#include "runtime/serving_engine.h"

#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace msh {

namespace {

RequestQueueOptions queue_options(const ServingEngineOptions& options) {
  RequestQueueOptions queue;
  queue.capacity = options.queue_capacity;
  for (i64 c = 0; c < kPriorityClasses; ++c) {
    queue.class_budget[static_cast<size_t>(c)] =
        options.admission.per_class[static_cast<size_t>(c)].queue_budget;
  }
  return queue;
}

/// Folds the engine-level intra_op_threads override into the executor
/// options every replica (and every heal/swap redeploy) is built from.
ServingEngineOptions resolve_intra_op(ServingEngineOptions options) {
  if (options.intra_op_threads >= 1)
    options.executor.intra_op_threads = options.intra_op_threads;
  return options;
}

/// One physical-medium model per worker (empty without wear tracking).
/// Per-worker seeds decorrelate pulse outcomes so the fleet does not
/// wear out in lockstep.
std::vector<std::shared_ptr<MramWearTracker>> make_wear_trackers(
    const ServingEngineOptions& options) {
  std::vector<std::shared_ptr<MramWearTracker>> trackers;
  if (!options.wear.enabled) return trackers;
  trackers.reserve(static_cast<size_t>(options.workers));
  for (i64 w = 0; w < options.workers; ++w) {
    WearOptions wear = options.wear;
    wear.seed =
        options.wear.seed + static_cast<u64>(w) * 0x9e3779b97f4a7c15ull;
    trackers.push_back(std::make_shared<MramWearTracker>(wear));
  }
  return trackers;
}

}  // namespace

ServingEngine::ServingEngine(RepNetModel& model, const Dataset& calibration,
                             ServingEngineOptions options)
    : options_(resolve_intra_op(std::move(options))),
      model_(model),
      wear_trackers_(make_wear_trackers(options_)),
      replicas_(make_executor_replicas(model, calibration, options_.workers,
                                       options_.executor, wear_trackers_)),
      queue_(queue_options(options_)),
      admission_(options_.admission, monotonic_now_us()) {
  MSH_REQUIRE(options_.idle_poll_us > 0);
  MSH_REQUIRE(options_.max_retries >= 0);
  MSH_REQUIRE(options_.request_deadline_us >= 0.0);
  MSH_REQUIRE(options_.scrub_every_batches >= 0);
  MSH_REQUIRE(options_.breaker.failure_threshold > 0);
  MSH_REQUIRE(options_.breaker.cooldown_us >= 0.0);
  input_amax_ = replicas_[0]->input_amax();
  expected_image_ = calibration.batch_images(0, 1).shape();
  states_.reserve(static_cast<size_t>(workers()));
  for (i64 i = 0; i < workers(); ++i)
    states_.push_back(std::make_unique<WorkerState>());
  log_info("serving engine: ", workers(), " worker(s), queue capacity ",
           queue_.capacity(), ", max batch ",
           options_.batcher.max_batch_rows, " rows, max wait ",
           options_.batcher.max_wait_us, " us, retry budget ",
           options_.max_retries, ", ecc ",
           ecc_mode_name(options_.executor.ecc));
  refresh_wear_metrics();  // initial deployment already cost pulses
  if (options_.autostart) start();
}

ServingEngine::~ServingEngine() { shutdown(); }

const PimRepNetExecutor& ServingEngine::replica(i64 i) const {
  MSH_REQUIRE(i >= 0 && i < workers());
  return *replicas_[static_cast<size_t>(i)];
}

void ServingEngine::start() {
  if (shut_down_.load(std::memory_order_acquire)) return;
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  threads_.reserve(static_cast<size_t>(workers()));
  for (i64 i = 0; i < workers(); ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

void ServingEngine::reject(detail::PendingRequest& request, const char* why) {
  InferenceResponse response;
  response.status = RequestStatus::kRejected;
  response.error = why;
  response.priority = request.priority;
  response.total_us = monotonic_now_us() - request.submit_us;
  detail::resolve(request, std::move(response));
}

void ServingEngine::shed(detail::PendingRequest& request,
                         const std::string& why) {
  InferenceResponse response;
  response.status = RequestStatus::kShed;
  response.error = why;
  response.priority = request.priority;
  response.retries = request.attempts;
  response.total_us = monotonic_now_us() - request.submit_us;
  detail::resolve(request, std::move(response));
}

ResponseFuture ServingEngine::submit(Tensor images,
                                     SubmitOptions submit_options) {
  MSH_REQUIRE(images.shape().rank() == 4);
  MSH_REQUIRE(images.shape()[0] > 0);
  MSH_REQUIRE(submit_options.deadline_us >= 0.0);
  detail::PendingRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.rows = images.shape()[0];
  request.images = std::move(images);
  request.priority = submit_options.priority;
  request.submit_us = monotonic_now_us();
  const f64 relative_deadline = submit_options.deadline_us > 0.0
                                    ? submit_options.deadline_us
                                    : options_.request_deadline_us;
  if (relative_deadline > 0.0)
    request.deadline_us = request.submit_us + relative_deadline;
  request.state = std::make_shared<detail::ResponseState>();
  ResponseFuture future(request.state);

  // A powered-off engine cannot accept anything; give the client a more
  // actionable signal than the generic shutdown rejection. (Benign race:
  // a submit that slips past this check lands on the closed queue.)
  if (powered_off_.load(std::memory_order_acquire)) {
    metrics_.record_rejected(request.priority);
    reject(request, "power interruption: engine is down until restart");
    return future;
  }

  // Validate against the deployed model up front: a shape mismatch must
  // resolve here with a descriptive error, not blow up a worker
  // mid-batch (and take its batchmates down with it).
  const Shape& got = request.images.shape();
  if (got[1] != expected_image_[1] || got[2] != expected_image_[2] ||
      got[3] != expected_image_[3]) {
    const std::string why = "image shape mismatch: got " + got.to_string() +
                            ", deployed model expects [B, " +
                            std::to_string(expected_image_[1]) + ", " +
                            std::to_string(expected_image_[2]) + ", " +
                            std::to_string(expected_image_[3]) + "]";
    metrics_.record_rejected(request.priority);
    reject(request, why.c_str());
    return future;
  }

  // Admission gate: sustained per-class overload is shed here, before it
  // costs a queue slot.
  if (!admission_.admit(request.priority, request.submit_us)) {
    metrics_.record_shed(request.priority, request.rows);
    shed(request, std::string("admission rate limit exceeded for class ") +
                      to_string(request.priority));
    return future;
  }

  switch (queue_.push(std::move(request))) {
    case PushResult::kOk:
      metrics_.sample_queue_depth(queue_.depth());
      break;
    case PushResult::kOverClassBudget:
      // push leaves the request intact on failure.
      metrics_.record_shed(request.priority, request.rows);
      shed(request, std::string("class queue budget exhausted for ") +
                        to_string(request.priority));
      break;
    case PushResult::kFull:
      metrics_.record_rejected(request.priority);
      reject(request, "request queue full");
      break;
    case PushResult::kClosed:
      metrics_.record_rejected(request.priority);
      reject(request, "engine is shut down");
      break;
  }
  return future;
}

void ServingEngine::inject_worker_fault(i64 worker, WorkerFault fault,
                                        MtjFaultModel model, u64 seed) {
  MSH_REQUIRE(worker >= 0 && worker < workers());
  WorkerState& state = *states_[static_cast<size_t>(worker)];
  const std::lock_guard<std::mutex> guard(state.mutex);
  state.pending.push_back({fault, model, seed});
}

i64 ServingEngine::healthy_workers() const {
  i64 count = 0;
  for (const auto& state : states_)
    if (state->healthy.load(std::memory_order_acquire)) ++count;
  return count;
}

void ServingEngine::apply_pending_faults(i64 index) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  std::vector<PendingFault> faults;
  {
    const std::lock_guard<std::mutex> guard(state.mutex);
    faults.swap(state.pending);
  }
  for (const PendingFault& fault : faults) {
    switch (fault.fault) {
      case WorkerFault::kCrashNextBatch:
        state.crash_next = true;
        break;
      case WorkerFault::kCorruptNvm: {
        Rng rng(fault.seed);
        const FaultStats stats =
            replicas_[static_cast<size_t>(index)]->inject_nvm_faults(
                fault.model, rng);
        log_warn("worker ", index, ": chaos corrupted ", stats.bits_flipped,
                 " of ", stats.bits_examined, " NVM bits");
        break;
      }
    }
  }
}

void ServingEngine::heal(i64 index, const std::string& why) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  state.healthy.store(false, std::memory_order_release);
  log_warn("worker ", index, " quarantined: ", why, "; redeploying replica");
  // Rebuild the replica from its deployment source — the shared golden
  // model, or the swapped-in image — read-only on the model, so the
  // other workers keep serving while this one re-programs its arrays.
  // With wear tracking the rewrite goes through this worker's medium:
  // delta-programmed (undisturbed words cost nothing), kHeal-attributed.
  auto& replica = replicas_[static_cast<size_t>(index)];
  replica = replica->clone_with_wear(replica->wear_tracker(), WearPath::kHeal);
  state.batches_since_scrub = 0;
  metrics_.record_heal();
  if (replica->wear_tracker() != nullptr) {
    // Physical read-back gate before re-entering service: a worn-out
    // medium may simply no longer hold the image. Failure means degraded
    // mode — this worker leaves rotation permanently while the rest of
    // the fleet keeps serving. It never serves from corrupt arrays.
    const DeploymentImage* reference = replica->source_image().get();
    DeploymentImage own;
    if (reference == nullptr) {
      own = replica->export_image();
      reference = &own;
    }
    const std::string verify_error = replica->verify_against(*reference);
    refresh_wear_metrics();
    if (!verify_error.empty()) {
      state.degraded = true;
      metrics_.record_worker_degraded();
      log_error("worker ", index,
                " degraded: healed replica failed physical verify (",
                verify_error,
                "); MRAM medium is worn out, worker leaves service");
      return;  // healthy stays false
    }
  }
  state.healthy.store(
      state.breaker == BreakerState::kClosed || !options_.breaker.enabled,
      std::memory_order_release);
  log_info("worker ", index, " healed, back in service");
}

void ServingEngine::service_swap(i64 index) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  const std::lock_guard<std::mutex> guard(state.mutex);
  if (!state.incoming) return;
  // Install between batches: the in-flight batch already finished on the
  // old replica, so the handoff fails no request.
  state.outgoing = std::move(replicas_[static_cast<size_t>(index)]);
  replicas_[static_cast<size_t>(index)] = std::move(state.incoming);
  state.batches_since_scrub = 0;
  state.swap_cv.notify_all();
}

bool ServingEngine::hand_replica_to_worker(
    i64 index, std::unique_ptr<PimRepNetExecutor> replica,
    std::unique_ptr<PimRepNetExecutor>* previous, f64 timeout_us) {
  WorkerState& state = *states_[static_cast<size_t>(index)];
  std::unique_lock<std::mutex> lock(state.mutex);
  state.incoming = std::move(replica);
  // Ceil, not truncate: a sub-microsecond timeout must still wait.
  const auto deadline =
      std::chrono::steady_clock::now() + microseconds_ceil(timeout_us);
  while (state.outgoing == nullptr) {
    if (state.swap_cv.wait_until(lock, deadline) ==
            std::cv_status::timeout &&
        state.outgoing == nullptr) {
      // The worker never picked it up (e.g. shutdown raced the roll).
      state.incoming.reset();
      return false;
    }
  }
  *previous = std::move(state.outgoing);
  return true;
}

bool ServingEngine::swap_model(std::shared_ptr<const DeploymentImage> image,
                               SwapOptions swap) {
  MSH_REQUIRE(image != nullptr);
  MSH_REQUIRE(swap.worker_timeout_us > 0.0);
  const std::lock_guard<std::mutex> roll_guard(swap_mutex_);
  if (!running_.load(std::memory_order_acquire) ||
      shut_down_.load(std::memory_order_acquire)) {
    log_error("model swap refused: engine is not running");
    metrics_.record_swap(false, 0, 0);
    return false;
  }

  std::vector<std::unique_ptr<PimRepNetExecutor>> stash(
      static_cast<size_t>(workers()));
  i64 swapped = 0;
  std::string failure;
  for (i64 w = 0; w < workers(); ++w) {
    // Deploy: a fresh replica programmed from the image's codes, built
    // on this thread — no worker is disturbed yet.
    std::unique_ptr<PimRepNetExecutor> candidate;
    try {
      PimExecutorOptions exec = options_.executor;
      if (!wear_trackers_.empty()) {
        exec.wear = wear_trackers_[static_cast<size_t>(w)];
        exec.wear_path = swap.wear_path;
      }
      candidate = PimRepNetExecutor::deploy_from_image(model_, exec,
                                                       input_amax_, image);
    } catch (const std::exception& e) {
      failure =
          "worker " + std::to_string(w) + " deploy failed: " + e.what();
      break;
    }
    if (swap.deploy_fault_ber > 0.0) {
      Rng rng(swap.deploy_fault_seed + static_cast<u64>(w));
      candidate->inject_nvm_faults(
          MtjFaultModel::symmetric(swap.deploy_fault_ber), rng);
    }
    // Verify: physical probe read-back against the image before any
    // traffic can reach the candidate.
    const std::string verify_error = candidate->verify_against(*image);
    if (!verify_error.empty()) {
      failure =
          "worker " + std::to_string(w) + " verify failed: " + verify_error;
      break;
    }
    // Promote: the worker installs it between batches; its old replica
    // lands in the stash, drained but intact, in case we must roll back.
    if (!hand_replica_to_worker(w, std::move(candidate),
                                &stash[static_cast<size_t>(w)],
                                swap.worker_timeout_us)) {
      failure = "worker " + std::to_string(w) +
                " did not pick up the new replica";
      break;
    }
    ++swapped;
    log_info("model swap: worker ", w, " promoted (", swapped, "/",
             workers(), ")");
  }

  if (swapped == workers()) {
    metrics_.record_swap(true, swapped, 0);
    refresh_wear_metrics();
    log_info("model swap complete: ", swapped, " worker(s) promoted");
    return true;
  }

  i64 rollbacks = 0;
  for (i64 w = 0; w < swapped; ++w) {
    auto& previous = stash[static_cast<size_t>(w)];
    // Rolling back is a physical act too: the candidate's codes occupy
    // the arrays, so the stashed replica re-programs its own codes over
    // them (delta-programmed — only the words the candidate actually
    // changed take pulses).
    if (previous != nullptr && previous->wear_tracker() != nullptr)
      previous->reprogram_nvm(swap.wear_path);
    std::unique_ptr<PimRepNetExecutor> discarded;
    if (hand_replica_to_worker(w, std::move(previous), &discarded,
                               swap.worker_timeout_us))
      ++rollbacks;
  }
  log_error("model swap aborted: ", failure, "; rolled back ", rollbacks,
            " of ", swapped, " promoted worker(s)");
  metrics_.record_swap(false, swapped, rollbacks);
  refresh_wear_metrics();
  return false;
}

ServingEngine::PowerFailureReport ServingEngine::power_fail(
    const PowerFailureSpec& spec) {
  MSH_REQUIRE(spec.outage_s >= 0.0);
  // Serialize with swap_model: a mid-roll swap finishes (or times out)
  // before the lights go out, so no replica is lost in handoff limbo.
  const std::lock_guard<std::mutex> roll_guard(swap_mutex_);
  PowerFailureReport report;
  if (powered_off_.exchange(true, std::memory_order_acq_rel))
    return report;  // already dark
  // Order matters: flag first (workers abandon instead of draining),
  // then close the queue (stops admission, wakes blocked pops), then
  // join.
  queue_.close();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  running_.store(false, std::memory_order_release);
  // Whatever the workers left behind dies with the power.
  while (auto victim = queue_.pop(0.0)) {
    power_kill(*victim, /*worker=*/-1);
    ++report.requests_killed;
  }
  // Array-level damage, one deterministic stream per replica.
  for (i64 w = 0; w < workers(); ++w) {
    const auto stats = replicas_[static_cast<size_t>(w)]->power_fail(
        spec.outage_s,
        spec.seed + static_cast<u64>(w) * 0x9e3779b97f4a7c15ull,
        spec.retention_tau_s);
    report.sram_bytes_wiped += stats.sram_bytes_wiped;
    report.mram_bits_drifted += stats.mram_drift.bits_flipped;
  }
  // Replicas parked mid-swap are CMOS state too — gone with the power.
  for (auto& state : states_) {
    const std::lock_guard<std::mutex> guard(state->mutex);
    state->incoming.reset();
    state->outgoing.reset();
    state->pending.clear();
    state->crash_next = false;
    state->healthy.store(false, std::memory_order_release);
  }
  metrics_.record_outage(report.sram_bytes_wiped, report.mram_bits_drifted);
  log_warn("power interruption: ", spec.outage_s, " s outage killed ",
           report.requests_killed, " queued request(s), wiped ",
           report.sram_bytes_wiped, " SRAM byte(s), drifted ",
           report.mram_bits_drifted, " MRAM bit(s)");
  return report;
}

ServingEngine::RestartReport ServingEngine::restart(
    const RestartOptions& options) {
  const std::lock_guard<std::mutex> roll_guard(swap_mutex_);
  RestartReport report;
  const f64 start_us = monotonic_now_us();
  if (!powered_off_.load(std::memory_order_acquire)) {
    report.error = "restart() without a preceding power_fail()";
    return report;
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    report.error = "engine was shut down; cannot restart";
    return report;
  }
  for (i64 w = 0; w < workers(); ++w) {
    auto& replica = replicas_[static_cast<size_t>(w)];
    const auto warm = replica->warm_restart();
    report.sram_cells_restored += warm.sram_cells_restored;
    report.ecc_corrected += warm.ecc_corrected;
    report.ecc_refetched += warm.ecc_refetched;
    // Verify-then-promote, the same physical read-back gate as a model
    // swap: recovered arrays must match the recovery image bit-exactly.
    // With no image given, a replica verifies against its own deployment
    // provenance (source image, or the golden codes it was programmed
    // with) — that still catches any MRAM drift the scrub missed.
    const DeploymentImage* reference = options.image.get();
    DeploymentImage own;
    if (reference == nullptr) {
      if (replica->source_image()) {
        reference = replica->source_image().get();
      } else {
        own = replica->export_image();
        reference = &own;
      }
    }
    std::string verify_error = replica->verify_against(*reference);
    if (verify_error.empty()) {
      ++report.workers_warm;
    } else {
      // Cold path: the replica was serving a generation the durable
      // store lost (rollback), or drift beat the code. Re-program the
      // arrays from the recovery image and verify again.
      log_warn("restart: worker ", w, " warm verify failed (", verify_error,
               "); cold redeploy");
      try {
        if (options.image) {
          PimExecutorOptions exec = options_.executor;
          if (!wear_trackers_.empty()) {
            exec.wear = wear_trackers_[static_cast<size_t>(w)];
            exec.wear_path = WearPath::kRecovery;
          }
          replica = PimRepNetExecutor::deploy_from_image(
              model_, exec, input_amax_, options.image);
        } else {
          replica = replica->clone_with_wear(replica->wear_tracker(),
                                             WearPath::kRecovery);
        }
      } catch (const std::exception& e) {
        report.error = "worker " + std::to_string(w) +
                       " cold redeploy failed: " + e.what();
        refresh_wear_metrics();
        return report;
      }
      verify_error = replica->verify_against(*reference);
      if (!verify_error.empty()) {
        report.error = "worker " + std::to_string(w) +
                       " failed verify even after cold redeploy: " +
                       verify_error;
        refresh_wear_metrics();
        return report;
      }
      ++report.workers_cold;
    }
  }
  refresh_wear_metrics();
  // All replicas verified: reset per-worker state (threads are joined,
  // so plain writes are safe), re-arm the queue, relight the pool.
  for (auto& state : states_) {
    state->batches_since_scrub = 0;
    state->consecutive_failures = 0;
    state->breaker = BreakerState::kClosed;
    state->open_until_us = 0.0;
    // Degraded mode survives power cycles: the medium is still worn.
    state->healthy.store(!state->degraded, std::memory_order_release);
  }
  queue_.reopen();
  powered_off_.store(false, std::memory_order_release);
  start();
  report.ok = true;
  report.rto_us = monotonic_now_us() - start_us;
  metrics_.record_recovery(report.rto_us, report.workers_warm,
                           report.workers_cold, report.sram_cells_restored,
                           report.ecc_corrected, report.ecc_refetched);
  log_info("restart complete in ", report.rto_us / 1000.0, " ms: ",
           report.workers_warm, " warm + ", report.workers_cold,
           " cold worker(s), ", report.ecc_corrected,
           " drifted bit(s) corrected, ", report.ecc_refetched,
           " word(s) re-fetched");
  return report;
}

bool ServingEngine::breaker_admits(i64 index) {
  if (!options_.breaker.enabled) return true;
  WorkerState& state = *states_[static_cast<size_t>(index)];
  if (state.breaker == BreakerState::kClosed) return true;
  // Shutdown drain must finish even with every breaker open: open gates
  // live traffic, and close() already stopped admission.
  if (queue_.closed()) return true;
  if (state.breaker == BreakerState::kOpen) {
    if (monotonic_now_us() < state.open_until_us) return false;
    state.breaker = BreakerState::kHalfOpen;
    metrics_.record_breaker_half_open();
    log_info("worker ", index, ": circuit breaker half-open, probing");
  }
  return true;
}

void ServingEngine::breaker_failure(i64 index) {
  if (!options_.breaker.enabled) return;
  WorkerState& state = *states_[static_cast<size_t>(index)];
  ++state.consecutive_failures;
  const bool trip =
      state.breaker == BreakerState::kHalfOpen ||
      (state.breaker == BreakerState::kClosed &&
       state.consecutive_failures >= options_.breaker.failure_threshold);
  if (!trip) return;
  state.breaker = BreakerState::kOpen;
  state.open_until_us = monotonic_now_us() + options_.breaker.cooldown_us;
  state.healthy.store(false, std::memory_order_release);
  metrics_.record_breaker_open();
  log_warn("worker ", index, ": circuit breaker open after ",
           state.consecutive_failures, " consecutive failure signal(s), ",
           "cooling down ", options_.breaker.cooldown_us, " us");
}

void ServingEngine::breaker_success(i64 index) {
  if (!options_.breaker.enabled) return;
  WorkerState& state = *states_[static_cast<size_t>(index)];
  state.consecutive_failures = 0;
  if (state.breaker == BreakerState::kClosed) return;
  state.breaker = BreakerState::kClosed;
  state.healthy.store(true, std::memory_order_release);
  metrics_.record_breaker_close();
  log_info("worker ", index, ": circuit breaker closed");
}

bool ServingEngine::shed_or_expire(detail::PendingRequest& request,
                                   f64 now_us) {
  if (request.deadline_us <= 0.0) return false;
  const f64 queued_us = now_us - request.submit_us;
  if (now_us >= request.deadline_us) {
    InferenceResponse response;
    response.status = RequestStatus::kTimedOut;
    response.error = "deadline expired before dispatch";
    response.priority = request.priority;
    response.retries = request.attempts;
    response.queue_us = queued_us;
    response.total_us = queued_us;
    metrics_.record_timed_out(request.priority, request.rows);
    detail::resolve(request, std::move(response));
    return true;
  }
  const f64 est_per_row = est_us_per_row_.load(std::memory_order_relaxed);
  if (est_per_row <= 0.0) return false;  // no estimate yet: give it a shot
  const f64 service_us = est_per_row * static_cast<f64>(request.rows);
  if (now_us + service_us <= request.deadline_us) return false;
  // Unmeetable but not yet expired: shed now, with attribution, instead
  // of burning PIM cycles on a result nobody will wait for.
  metrics_.record_shed(request.priority, request.rows);
  shed(request,
       "deadline unmeetable: queued " +
           std::to_string(static_cast<i64>(queued_us)) +
           " us, estimated service " +
           std::to_string(static_cast<i64>(service_us)) +
           " us exceeds remaining budget " +
           std::to_string(static_cast<i64>(request.deadline_us - now_us)) +
           " us");
  return true;
}

void ServingEngine::scrub_and_heal(i64 index) {
  const auto reports = replicas_[static_cast<size_t>(index)]->scrub();
  EccStats totals;
  for (const auto& report : reports) {
    totals += report.weights;
    totals += report.indices;
  }
  metrics_.record_scrub(totals.corrected, totals.detected_uncorrectable,
                        totals.silent);
  if (totals.corrected > 0) refresh_wear_metrics();  // repairs took pulses
  if (totals.corrected > 0)
    log_info("worker ", index, ": scrub corrected ", totals.corrected,
             " single-bit error(s)");
  if (totals.detected_uncorrectable > 0 || totals.silent > 0) {
    if (options_.self_heal) {
      heal(index, "scrub found " +
                      std::to_string(totals.detected_uncorrectable) +
                      " uncorrectable + " + std::to_string(totals.silent) +
                      " silent corrupt word(s)");
    } else {
      log_error("worker ", index, ": scrub found ",
                totals.detected_uncorrectable, " uncorrectable + ",
                totals.silent, " silent corrupt word(s); self-heal is off");
    }
    breaker_failure(index);
  }
}

void ServingEngine::power_kill(detail::PendingRequest& request, i64 worker) {
  InferenceResponse response;
  response.status = RequestStatus::kPowerLoss;
  response.error = "power interruption killed the request in flight";
  response.priority = request.priority;
  response.worker = worker;
  response.retries = request.attempts;
  response.total_us = monotonic_now_us() - request.submit_us;
  metrics_.record_power_loss(request.priority);
  detail::resolve(request, std::move(response));
}

void ServingEngine::serve_batch(i64 index, MicroBatch& batch) {
  // The outage beat this batch to the arrays: nothing was computed.
  if (powered_off_.load(std::memory_order_acquire)) {
    for (auto& request : batch.requests) power_kill(request, index);
    return;
  }
  apply_pending_faults(index);
  WorkerState& state = *states_[static_cast<size_t>(index)];

  // Deadline gate: requests whose budget expired while queued (or while
  // bouncing between failed replicas) resolve kTimedOut before burning
  // hardware time; the rest of the batch is rebuilt and served. The
  // batcher's shed hook already caught most of these at pickup; this is
  // the last line, right before dispatch.
  {
    const f64 now = monotonic_now_us();
    std::vector<detail::PendingRequest> live;
    live.reserve(batch.requests.size());
    for (auto& request : batch.requests) {
      if (request.deadline_us > 0.0 && now >= request.deadline_us) {
        InferenceResponse response;
        response.status = RequestStatus::kTimedOut;
        response.error = "deadline expired before dispatch";
        response.priority = request.priority;
        response.worker = index;
        response.retries = request.attempts;
        response.total_us = now - request.submit_us;
        metrics_.record_timed_out(request.priority, request.rows);
        detail::resolve(request, std::move(response));
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) return;
    if (live.size() != batch.requests.size()) {
      batch.requests = std::move(live);
      batch.rows = 0;
      for (const auto& request : batch.requests) batch.rows += request.rows;
      assemble_batch_images(batch);
    } else {
      batch.requests = std::move(live);
    }
  }

  metrics_.record_batch(batch.rows);
  const f64 dispatch_start_us = monotonic_now_us();
  Tensor logits;
  std::string error;
  bool ok = true;
  if (state.crash_next) {
    state.crash_next = false;
    ok = false;
    error = "injected replica fault";
    log_error("worker ", index, ": batch of ", batch.rows,
              " rows failed: ", error);
  } else {
    try {
      logits = replicas_[static_cast<size_t>(index)]->forward(batch.images);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
      log_error("worker ", index, ": batch of ", batch.rows,
                " rows failed: ", error);
    }
  }

  // The outage hit while the batch was on the arrays (or between forward
  // and resolve): the responses never left the device. Kill them rather
  // than hand out results computed on dying hardware — and never heal or
  // retry into a powered-off engine.
  if (powered_off_.load(std::memory_order_acquire)) {
    for (auto& request : batch.requests) power_kill(request, index);
    return;
  }

  if (!ok) {
    // A zero-copy single-request batch adopted the request's tensor
    // (assemble_batch_images); hand it back so a retry re-enters the
    // queue with its payload intact.
    if (batch.requests.size() == 1 && batch.requests.front().images.empty()) {
      batch.requests.front().images = std::move(batch.images);
    }
    if (options_.self_heal) heal(index, error);
    breaker_failure(index);
    // Retry in-flight requests at the head of the queue (they already
    // paid admission); the budget bounds how many failures one request
    // may ride through. Reverse order keeps FIFO intact.
    for (auto it = batch.requests.rbegin(); it != batch.requests.rend();
         ++it) {
      detail::PendingRequest& request = *it;
      if (request.attempts < options_.max_retries) {
        ++request.attempts;
        metrics_.record_retry();
        queue_.push_front(std::move(request));
      } else {
        InferenceResponse response;
        response.status = RequestStatus::kFailed;
        response.error = error + " (retry budget exhausted)";
        response.priority = request.priority;
        response.worker = index;
        response.batch_rows = batch.rows;
        response.retries = request.attempts;
        response.total_us = monotonic_now_us() - request.submit_us;
        metrics_.record_failed(request.priority, request.rows);
        detail::resolve(request, std::move(response));
      }
    }
    return;
  }

  MSH_ENSURE(logits.shape()[0] == batch.rows);
  const f64 done_us = monotonic_now_us();
  const i64 classes = logits.shape()[1];

  // Feed the shed policy's service-time model. Relaxed: a lost update
  // just means a slightly staler estimate.
  const f64 per_row =
      (done_us - dispatch_start_us) / static_cast<f64>(batch.rows);
  const f64 prev = est_us_per_row_.load(std::memory_order_relaxed);
  est_us_per_row_.store(prev <= 0.0 ? per_row : 0.8 * prev + 0.2 * per_row,
                        std::memory_order_relaxed);

  i64 row = 0;
  for (auto& request : batch.requests) {
    InferenceResponse response;
    response.priority = request.priority;
    response.worker = index;
    response.batch_rows = batch.rows;
    response.retries = request.attempts;
    // Queue latency includes batch-formation wait: it is the full
    // submit -> hardware-dispatch gap a client experiences.
    response.queue_us = batch.formed_us - request.submit_us;
    response.total_us = done_us - request.submit_us;
    response.status = RequestStatus::kOk;
    if (batch.requests.size() == 1) {
      // Single-request batch: the whole logits tensor is this request's
      // answer — move it instead of copying (zero-copy out, matching the
      // zero-copy in).
      response.logits = std::move(logits);
    } else {
      response.logits = Tensor(Shape{request.rows, classes});
      std::memcpy(response.logits.data(), logits.data() + row * classes,
                  sizeof(f32) * static_cast<size_t>(request.rows * classes));
    }
    metrics_.record_completed(request.priority, request.rows,
                              response.queue_us, response.total_us);
    row += request.rows;
    detail::resolve(request, std::move(response));
  }

  // Breaker signals from a served batch: a latency outlier is a strike,
  // anything else is a success (which also closes a half-open probe).
  if (options_.breaker.latency_outlier_us > 0.0 &&
      done_us - dispatch_start_us > options_.breaker.latency_outlier_us) {
    breaker_failure(index);
  } else {
    breaker_success(index);
  }

  if (options_.scrub_every_batches > 0 &&
      ++state.batches_since_scrub >= options_.scrub_every_batches) {
    state.batches_since_scrub = 0;
    scrub_and_heal(index);
  }
}

void ServingEngine::worker_loop(i64 index) {
  DynamicBatcher batcher(queue_, options_.batcher,
                         [this](detail::PendingRequest& request, f64 now) {
                           return shed_or_expire(request, now);
                         });
  WorkerState& state = *states_[static_cast<size_t>(index)];
  while (true) {
    // Power loss: stop dead — no draining, the backlog dies with the
    // power (power_fail resolves it as kPowerLoss).
    if (powered_off_.load(std::memory_order_acquire)) break;
    service_swap(index);
    if (state.degraded) {
      // Worn-out medium: permanently out of dequeue. Still parks here
      // (not exits) so shutdown drains cleanly through the others.
      if (queue_.closed()) break;
      std::this_thread::sleep_for(microseconds_ceil(options_.idle_poll_us));
      continue;
    }
    if (!breaker_admits(index)) {
      // Open breaker: stay out of dequeue, let the others take the load.
      std::this_thread::sleep_for(microseconds_ceil(options_.idle_poll_us));
      continue;
    }
    auto batch = batcher.next(options_.idle_poll_us);
    if (!batch) {
      // nullopt on a closed queue means closed *and* drained: done.
      if (queue_.closed()) break;
      continue;  // idle tick, or every picked-up request was shed
    }
    serve_batch(index, *batch);
  }
  service_swap(index);  // don't strand a replica parked by a late swap
  // Finalize the breaker: open only gates traffic, the replica behind it
  // was already healed, and there is no traffic left — the engine ends
  // fully in service. A degraded worker stays out: its arrays are gone.
  if (state.degraded) return;
  if (state.breaker != BreakerState::kClosed) {
    state.breaker = BreakerState::kClosed;
    state.healthy.store(true, std::memory_order_release);
    metrics_.record_breaker_close();
  }
}

void ServingEngine::refresh_wear_metrics() {
  if (wear_trackers_.empty()) return;
  WearTotals totals;
  for (const auto& tracker : wear_trackers_) totals += tracker->totals();
  metrics_.update_wear(totals);
}

void ServingEngine::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();  // stop admission; workers drain the backlog
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  running_.store(false, std::memory_order_release);
  // Never-started engine: resolve whatever was staged in the queue.
  while (auto leftover = queue_.pop(0.0)) {
    metrics_.record_rejected(leftover->priority);
    reject(*leftover, "engine shut down before serving");
  }
}

}  // namespace msh
