// Request/response types for the serving runtime: what a client submits
// (a batch of images plus a priority class and deadline), what it gets
// back (logits + timings + status), and the future-style handle
// connecting the two across threads.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.h"
#include "tensor/tensor.h"

namespace msh {

enum class RequestStatus {
  kPending,   ///< still queued or executing
  kOk,        ///< logits are valid
  kRejected,  ///< backpressure: the queue was full (or the engine stopped)
  kFailed,    ///< the executor threw and the retry budget is spent
  kTimedOut,  ///< per-request deadline expired before a healthy dispatch
  kShed,      ///< overload control dropped the request before dispatch
  kPowerLoss, ///< a power interruption killed the request in flight
};

const char* to_string(RequestStatus status);

/// Priority class of a request. Under overload, load is shed from the
/// bottom of this ordering first: best-effort traffic absorbs the
/// pressure so interactive p99 stays bounded.
enum class Priority {
  kInteractive = 0,  ///< user-facing, tight deadline, served first
  kBatch = 1,        ///< background batch work
  kBestEffort = 2,   ///< speculative / free-tier; first to shed
};

inline constexpr i64 kPriorityClasses = 3;

const char* to_string(Priority priority);

/// Per-request knobs accepted by ServingEngine::submit.
struct SubmitOptions {
  Priority priority = Priority::kInteractive;
  /// Relative deadline (microseconds from submit). The engine resolves a
  /// request kShed/kTimedOut rather than dispatching it once the deadline
  /// is unmeetable. 0 = use the engine default (`request_deadline_us`);
  /// an engine default of 0 too means no deadline.
  f64 deadline_us = 0.0;
};

/// What the client submits: [B, C, H, W] images (B >= 1).
struct InferenceRequest {
  Tensor images;
};

/// What the client receives once the request resolves.
struct InferenceResponse {
  RequestStatus status = RequestStatus::kPending;
  Tensor logits;      ///< [B, classes]; empty unless status == kOk
  std::string error;  ///< set when status is kRejected/kFailed/kShed
  u64 id = 0;         ///< engine-assigned, monotonically increasing
  Priority priority = Priority::kInteractive;
  i64 worker = -1;    ///< replica index that served the request
  i64 batch_rows = 0; ///< total rows of the hardware batch it rode in
  i64 retries = 0;    ///< failed dispatches survived before resolving
  f64 queue_us = 0.0; ///< submit -> dispatch to a worker
  f64 total_us = 0.0; ///< submit -> response ready
};

namespace detail {
/// Shared slot written once by a worker and read by the client.
struct ResponseState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  InferenceResponse response;
};
}  // namespace detail

/// Future-style handle returned by ServingEngine::submit. poll() never
/// blocks; get() blocks until the response is ready. Handles are cheap to
/// copy (shared state) and remain valid after the engine is destroyed,
/// because shutdown resolves every accepted request first.
class ResponseFuture {
 public:
  ResponseFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the response is ready; never blocks.
  bool poll() const;

  /// Blocks until ready, then returns the response (copy; get() may be
  /// called repeatedly).
  InferenceResponse get() const;

  /// Blocks up to `timeout_us`; true if the response became ready.
  bool wait_for_us(f64 timeout_us) const;

 private:
  friend class ServingEngine;
  explicit ResponseFuture(std::shared_ptr<detail::ResponseState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::ResponseState> state_;
};

namespace detail {
/// A request in flight inside the engine: payload + promise side of the
/// future + the submit timestamp for latency accounting.
struct PendingRequest {
  u64 id = 0;
  Tensor images;
  i64 rows = 0;
  Priority priority = Priority::kInteractive;
  f64 submit_us = 0.0;
  f64 deadline_us = 0.0;  ///< absolute; 0 = no deadline
  i64 attempts = 0;       ///< failed dispatches so far (retry accounting)
  std::shared_ptr<ResponseState> state;
};

/// Resolves the future: fills the response and wakes waiters. Must be
/// called exactly once per accepted request.
void resolve(PendingRequest& request, InferenceResponse&& response);
}  // namespace detail

}  // namespace msh
