#include "runtime/dynamic_batcher.h"

#include <algorithm>
#include <cstring>

#include "common/stopwatch.h"

namespace msh {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatcherOptions options,
                               ShedPolicy shed)
    : queue_(queue), options_(options), shed_(std::move(shed)) {
  MSH_REQUIRE(options_.max_batch_rows > 0);
  MSH_REQUIRE(options_.max_wait_us >= 0);
}

Tensor concat_request_images(
    const std::vector<detail::PendingRequest>& requests) {
  MSH_REQUIRE(!requests.empty());
  const Shape& first = requests.front().images.shape();
  MSH_REQUIRE(first.rank() == 4);
  i64 rows = 0;
  for (const auto& r : requests) {
    const Shape& s = r.images.shape();
    MSH_REQUIRE(s.rank() == 4 && s[1] == first[1] && s[2] == first[2] &&
                s[3] == first[3]);
    rows += s[0];
  }
  Tensor batch(Shape{rows, first[1], first[2], first[3]});
  f32* dst = batch.data();
  for (const auto& r : requests) {
    std::memcpy(dst, r.images.data(),
                sizeof(f32) * static_cast<size_t>(r.images.numel()));
    dst += r.images.numel();
  }
  return batch;
}

void assemble_batch_images(MicroBatch& batch) {
  MSH_REQUIRE(!batch.requests.empty());
  if (batch.requests.size() == 1) {
    MSH_REQUIRE(batch.requests.front().images.shape().rank() == 4);
    batch.images = std::move(batch.requests.front().images);
    return;
  }
  batch.images = concat_request_images(batch.requests);
}

std::optional<MicroBatch> DynamicBatcher::next(f64 idle_timeout_us) {
  auto first = queue_.pop(idle_timeout_us);
  if (!first) return std::nullopt;
  if (shed_ && shed_(*first, monotonic_now_us())) return std::nullopt;

  MicroBatch batch;
  batch.rows = first->rows;
  batch.requests.push_back(std::move(*first));

  // Latency-bounded coalescing. A single oversized request (> max rows)
  // still dispatches — requests are never split; the batch may likewise
  // overshoot by at most one request's rows.
  const f64 deadline = monotonic_now_us() + options_.max_wait_us;
  while (batch.rows < options_.max_batch_rows) {
    const f64 remaining = deadline - monotonic_now_us();
    if (remaining <= 0) break;
    auto follower = queue_.pop(remaining);
    if (!follower) break;  // deadline hit, or queue closed and drained
    if (shed_ && shed_(*follower, monotonic_now_us())) continue;
    batch.rows += follower->rows;
    batch.requests.push_back(std::move(*follower));
  }

  assemble_batch_images(batch);
  batch.formed_us = monotonic_now_us();
  return batch;
}

}  // namespace msh
