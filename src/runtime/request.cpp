#include "runtime/request.h"

#include "common/stopwatch.h"

namespace msh {

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kPending:
      return "pending";
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kTimedOut:
      return "timed_out";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kPowerLoss:
      return "power_loss";
  }
  return "unknown";
}

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

bool ResponseFuture::poll() const {
  MSH_REQUIRE(state_ != nullptr);
  const std::lock_guard<std::mutex> guard(state_->mutex);
  return state_->done;
}

InferenceResponse ResponseFuture::get() const {
  MSH_REQUIRE(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->response;
}

bool ResponseFuture::wait_for_us(f64 timeout_us) const {
  MSH_REQUIRE(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, microseconds_ceil(timeout_us),
                             [&] { return state_->done; });
}

namespace detail {

void resolve(PendingRequest& request, InferenceResponse&& response) {
  MSH_REQUIRE(request.state != nullptr);
  {
    const std::lock_guard<std::mutex> guard(request.state->mutex);
    MSH_ENSURE(!request.state->done);
    request.state->response = std::move(response);
    request.state->response.id = request.id;
    request.state->done = true;
  }
  request.state->cv.notify_all();
}

}  // namespace detail
}  // namespace msh
