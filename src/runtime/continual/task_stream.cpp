#include "runtime/continual/task_stream.h"

namespace msh {

TaskStream::TaskStream(TrainTestSplit split, u64 seed)
    : split_(std::move(split)), rng_(seed) {
  MSH_REQUIRE(split_.train.size() > 0);
  MSH_REQUIRE(split_.train.images.shape().rank() == 4);
  split_.train.shuffle(rng_);
}

void TaskStream::next_batch(i64 rows, Tensor* x, std::vector<i32>* labels) {
  MSH_REQUIRE(rows > 0 && x != nullptr && labels != nullptr);
  const Shape& s = split_.train.images.shape();
  const i64 sample = s[1] * s[2] * s[3];
  *x = Tensor(Shape{rows, s[1], s[2], s[3]});
  labels->resize(static_cast<size_t>(rows));
  for (i64 r = 0; r < rows; ++r) {
    if (cursor_ == split_.train.size()) {
      split_.train.shuffle(rng_);
      cursor_ = 0;
      ++epochs_completed_;
    }
    const f32* src = split_.train.images.data() + cursor_ * sample;
    f32* dst = x->data() + r * sample;
    for (i64 k = 0; k < sample; ++k) dst[k] = src[k];
    (*labels)[static_cast<size_t>(r)] =
        split_.train.labels[static_cast<size_t>(cursor_)];
    ++cursor_;
  }
  samples_streamed_ += rows;
}

void TaskStream::skip(i64 rows) {
  MSH_REQUIRE(rows >= 0);
  for (i64 r = 0; r < rows; ++r) {
    if (cursor_ == split_.train.size()) {
      // Same reshuffle the skipped next_batch calls would have drawn, so
      // the RNG stays in lockstep with an uninterrupted run.
      split_.train.shuffle(rng_);
      cursor_ = 0;
      ++epochs_completed_;
    }
    ++cursor_;
  }
  samples_streamed_ += rows;
}

}  // namespace msh
