#include "runtime/continual/continual_learner.h"

#include <chrono>

#include "common/stopwatch.h"
#include "repnet/trainer.h"

namespace msh {

ContinualLearner::ContinualLearner(ServingEngine& engine,
                                   RepNetModel& trainer_model,
                                   TaskStream stream,
                                   const Dataset& calibration,
                                   ContinualLearnerOptions options)
    : engine_(engine),
      trainer_model_(trainer_model),
      stream_(std::move(stream)),
      options_(options),
      head_core_(engine.options().executor.core),
      poison_rng_(options.seed ^ 0x9e3779b97f4a7c15ull) {
  MSH_REQUIRE(options_.batch > 0 && options_.steps_per_round > 0);
  MSH_REQUIRE(&trainer_model_ != &engine_.model());
  MSH_REQUIRE(stream_.classes() ==
              trainer_model_.classifier().out_features());

  // Mirror the served weights, then deploy the trainer-side executor
  // with the engine's options and calibration data so its activation
  // scales — and therefore every exported image — match what the engine
  // would produce from the same weights. On resume the calibration walk
  // still runs on the *mirrored* (pre-adaptation) weights, exactly as
  // the crashed lane's did, so the recorded ranges — and every future
  // exported image — stay bit-identical to an uninterrupted run; the
  // checkpointed params are restored only afterwards.
  trainer_model_.copy_state_from(engine_.model());
  trainer_exec_ = std::make_unique<PimRepNetExecutor>(
      trainer_model_, calibration, engine_.options().executor);
  if (options_.resume)
    restore_params(trainer_model_.learnable_params(),
                   options_.resume->params);

  // In-PIM classifier head, warm-started from the served classifier (on
  // resume: the checkpointed classifier, restored just above — the
  // crashed head's exact state, since every round ends head-synced).
  head_ = std::make_unique<PimLinearTrainer>(
      head_core_, trainer_model_.feature_dim(), stream_.classes(),
      PimTrainerOptions{.lr = options_.head_lr, .seed = options_.seed});
  head_->set_state(trainer_model_.classifier().weight().value,
                   trainer_model_.classifier().bias().value);
  head_cycles_seen_ = head_->modeled_cycles();

  sgd_ = std::make_unique<Sgd>(
      trainer_model_.rep_params(),
      SgdOptions{.lr = options_.rep_lr,
                 .momentum = options_.rep_momentum,
                 .weight_decay = options_.rep_weight_decay});

  if (options_.resume) {
    const LearnerCheckpoint& cp = *options_.resume;
    sgd_->restore_velocity(cp.velocity);
    // Fast-forward the stream so the sample (and reshuffle) sequence
    // continues exactly where the crashed lane left off.
    stream_.skip(cp.samples_streamed);
    steps_.store(cp.steps, std::memory_order_relaxed);
    rounds_.store(cp.rounds, std::memory_order_relaxed);
    publishes_.store(cp.publishes, std::memory_order_relaxed);
    rollbacks_.store(cp.rollbacks, std::memory_order_relaxed);
    // Gate state is checkpointed, not re-measured: re-evaluating the
    // baseline here would double-count hardware time and could drift
    // the gate's bar across a crash.
    baseline_accuracy_ = cp.baseline_accuracy;
    best_accuracy_.store(cp.best_accuracy, std::memory_order_relaxed);
    last_accuracy_.store(cp.last_accuracy, std::memory_order_relaxed);
  } else {
    // Pre-adaptation holdout accuracy of the (quantized) served weights:
    // the gate's starting bar and the bench's improvement reference.
    baseline_accuracy_ = trainer_exec_->clone()->evaluate(
        stream_.holdout(), options_.holdout_batch);
    best_accuracy_.store(baseline_accuracy_, std::memory_order_relaxed);
    last_accuracy_.store(baseline_accuracy_, std::memory_order_relaxed);
    engine_.metrics().record_training_baseline(baseline_accuracy_);
  }
  last_good_ = snapshot_params(trainer_model_.learnable_params());
}

ContinualLearner::~ContinualLearner() { stop(); }

void ContinualLearner::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread(&ContinualLearner::run, this);
  running_ = true;
}

void ContinualLearner::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void ContinualLearner::run() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (options_.max_rounds > 0 &&
        rounds_.load(std::memory_order_relaxed) >= options_.max_rounds)
      break;
    const f64 t0 = monotonic_now_us();
    run_round();
    const f64 busy = monotonic_now_us() - t0;
    f64 idle = 0.0;
    if (options_.duty_cycle > 0.0 && options_.duty_cycle < 1.0) {
      // Sleep long enough that training occupies `duty_cycle` of the
      // lane's wall time, in small slices so stop() stays responsive.
      idle = busy * (1.0 - options_.duty_cycle) / options_.duty_cycle;
      const f64 until = monotonic_now_us() + idle;
      while (!stop_requested_.load(std::memory_order_acquire) &&
             monotonic_now_us() < until) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    engine_.metrics().record_training_slice(busy, idle);
  }
}

f64 ContinualLearner::train_steps_once() {
  Tensor x;
  std::vector<i32> y;
  stream_.next_batch(options_.batch, &x, &y);

  // Software forward through frozen backbone + Rep path, hardware head
  // step (forward, error propagation, update, redeploy), then Rep-path
  // backward from the error the transposed PE handed back (eq. 1).
  Tensor features = trainer_model_.forward_features(x, /*training=*/true);
  Tensor propagated;
  const f64 loss = head_->train_step(features, y, &propagated);
  trainer_model_.backward_features(propagated);
  sgd_->step();

  steps_.fetch_add(1, std::memory_order_relaxed);
  engine_.metrics().record_training_step(loss, options_.batch);
  return loss;
}

void ContinualLearner::sync_head_to_model() {
  trainer_model_.classifier().weight().value = head_->weights();
  trainer_model_.classifier().bias().value = head_->bias();
}

void ContinualLearner::poison_rep_path() {
  for (Param* p : trainer_model_.rep_params()) {
    p->value += Tensor::randn(p->value.shape(), poison_rng_, 0.0f,
                              options_.poison_stddev);
  }
}

void ContinualLearner::run_round() {
  f64 loss_sum = 0.0;
  for (i64 s = 0; s < options_.steps_per_round; ++s)
    loss_sum += train_steps_once();

  const i64 round = rounds_.load(std::memory_order_relaxed);
  if (round == options_.poison_round) poison_rep_path();
  sync_head_to_model();

  // Gate on the exact artifact a publish would ship: a re-quantized
  // candidate replica, evaluated on the held-out split in hardware.
  auto candidate = trainer_exec_->clone();
  const f64 acc =
      candidate->evaluate(stream_.holdout(), options_.holdout_batch);
  last_accuracy_.store(acc, std::memory_order_relaxed);

  const i64 cycles = head_->modeled_cycles() - head_cycles_seen_;
  head_cycles_seen_ = head_->modeled_cycles();
  engine_.metrics().record_training_round(
      loss_sum / static_cast<f64>(options_.steps_per_round), acc, cycles,
      head_->slots_rewritten_per_step() * options_.steps_per_round);

  const f64 best = best_accuracy_.load(std::memory_order_relaxed);
  if (acc >= best + options_.min_accuracy_gain) {
    // Publish. Lane state advances on the gate decision alone (a pure
    // function of the seeded training history), never on swap timing,
    // so the published-image sequence is reproducible bit-for-bit.
    auto image =
        std::make_shared<DeploymentImage>(candidate->export_image());
    best_accuracy_.store(acc, std::memory_order_relaxed);
    last_good_ = snapshot_params(trainer_model_.learnable_params());
    last_published_ = image;
    // Lane publishes carry their own wear attribution: on a worn medium
    // the ledger must show whether deploys or the publish cadence ate
    // the endurance budget.
    SwapOptions swap = options_.swap;
    swap.wear_path = WearPath::kPublish;
    const bool ok = engine_.swap_model(image, swap);
    if (ok) publishes_.fetch_add(1, std::memory_order_relaxed);
    engine_.metrics().record_training_publish(ok);
  } else if (acc < best - options_.rollback_margin) {
    // Regression: restore the last-good weights (the regressing
    // candidate is never promoted), resync the in-PIM head, and drop
    // stale momentum.
    restore_params(trainer_model_.learnable_params(), last_good_);
    head_->set_state(trainer_model_.classifier().weight().value,
                     trainer_model_.classifier().bias().value);
    sgd_ = std::make_unique<Sgd>(
        trainer_model_.rep_params(),
        SgdOptions{.lr = options_.rep_lr,
                   .momentum = options_.rep_momentum,
                   .weight_decay = options_.rep_weight_decay});
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    engine_.metrics().record_training_rollback();
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

LearnerCheckpoint ContinualLearner::checkpoint(u64 image_generation) {
  LearnerCheckpoint cp;
  cp.rounds = rounds_.load(std::memory_order_relaxed);
  cp.steps = steps_.load(std::memory_order_relaxed);
  cp.samples_streamed = stream_.samples_streamed();
  cp.publishes = publishes_.load(std::memory_order_relaxed);
  cp.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  cp.baseline_accuracy = baseline_accuracy_;
  cp.best_accuracy = best_accuracy_.load(std::memory_order_relaxed);
  cp.last_accuracy = last_accuracy_.load(std::memory_order_relaxed);
  cp.image_generation = image_generation;
  cp.params = snapshot_params(trainer_model_.learnable_params());
  cp.velocity = sgd_->velocity_snapshot();
  return cp;
}

}  // namespace msh
