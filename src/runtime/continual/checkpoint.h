// Continual-learner checkpoint: everything the lane needs to resume
// training after a power interruption exactly where (and exactly *as*)
// it left off — round/step counters, gate state, the full learnable
// parameter set, and the SGD momentum buffers. Serialized as a flat
// little-endian record; integrity is the enclosing journal frame's CRC
// (see deploy/journal.h), so a torn append can never replay as a
// half-written checkpoint.
//
// Determinism contract: restoring a checkpoint and fast-forwarding the
// TaskStream by samples_streamed reproduces the crashed lane's state
// bit-for-bit, so two same-seed runs interrupted at the same round
// publish byte-identical images after recovery.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace msh {

struct LearnerCheckpoint {
  // Lane counters at checkpoint time.
  i64 rounds = 0;
  i64 steps = 0;
  i64 samples_streamed = 0;  ///< TaskStream::skip() amount on resume
  i64 publishes = 0;
  i64 rollbacks = 0;
  // Gate state.
  f64 baseline_accuracy = 0.0;
  f64 best_accuracy = 0.0;
  f64 last_accuracy = 0.0;
  /// Durable-image generation the engine was serving when this
  /// checkpoint was taken (0 = the boot image). Lets recovery report the
  /// training rounds lost between the last checkpoint and the outage.
  u64 image_generation = 0;
  /// Learnable params (RepNetModel::learnable_params() order) and SGD
  /// momentum (rep_params() order) — bit-exact f32 payloads.
  std::vector<Tensor> params;
  std::vector<Tensor> velocity;

  std::string serialize() const;
  /// Throws SimulationError on a malformed record. `context` names the
  /// source in error messages.
  static LearnerCheckpoint deserialize(const std::string& blob,
                                       const std::string& context);
};

}  // namespace msh
