// Deterministic streaming source of labeled adaptation samples for the
// continual-learning lane. Wraps a task's train/test split: next_batch()
// hands out rows in a seeded per-epoch shuffle order with wraparound, so
// a fixed (seed, batch size, step count) always yields the identical
// sample sequence — the bedrock of the lane's bit-identical publish
// guarantee. The test split is held out for candidate gating and never
// enters the training stream.
#pragma once

#include <vector>

#include "common/rng.h"
#include "workloads/dataset.h"

namespace msh {

class TaskStream {
 public:
  /// Takes ownership of the split; the train side is reshuffled with a
  /// stream-local Rng(seed) before the first batch and at every epoch
  /// boundary.
  TaskStream(TrainTestSplit split, u64 seed);

  /// Assembles the next `rows` samples into x [rows, C, H, W] and
  /// `labels` (resized to rows), crossing epoch boundaries as needed.
  void next_batch(i64 rows, Tensor* x, std::vector<i32>* labels);

  /// Fast-forwards the stream past `rows` samples without materializing
  /// them — identical cursor/shuffle evolution to next_batch, so a
  /// resumed learner (see runtime/recovery) skipping its checkpoint's
  /// samples_streamed() sees exactly the sample sequence the crashed run
  /// would have seen next.
  void skip(i64 rows);

  /// The held-out evaluation split (never streamed).
  const Dataset& holdout() const { return split_.test; }

  i64 samples_streamed() const { return samples_streamed_; }
  i64 epochs_completed() const { return epochs_completed_; }
  i32 classes() const { return split_.train.classes; }
  i64 train_size() const { return split_.train.size(); }

 private:
  TrainTestSplit split_;
  Rng rng_;
  i64 cursor_ = 0;  ///< next unread row of the current epoch
  i64 samples_streamed_ = 0;
  i64 epochs_completed_ = 0;
};

}  // namespace msh
