#include "runtime/continual/checkpoint.h"

#include <cstring>
#include <sstream>

namespace msh {

namespace {

constexpr u32 kMagic = 0x4348534Du;  // "MSHC" little-endian
constexpr u32 kVersion = 1;

template <typename T>
void put(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void put_tensors(std::string& out, const std::vector<Tensor>& tensors) {
  put(out, static_cast<u64>(tensors.size()));
  for (const Tensor& t : tensors) {
    put(out, static_cast<u32>(t.shape().rank()));
    for (const i64 d : t.shape().dims()) put(out, d);
    out.append(reinterpret_cast<const char*>(t.data()),
               static_cast<size_t>(t.numel()) * sizeof(f32));
  }
}

class Cursor {
 public:
  Cursor(const std::string& blob, const std::string& context)
      : blob_(blob), context_(context) {}

  template <typename T>
  T pod(const char* what) {
    T value{};
    if (blob_.size() - pos_ < sizeof(T))
      throw SimulationError("LearnerCheckpoint: truncated " +
                            std::string(what) + " in " + context_);
    std::memcpy(&value, blob_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::vector<Tensor> tensors(const char* what) {
    const u64 count = pod<u64>(what);
    if (count > 1u << 20)
      throw SimulationError("LearnerCheckpoint: implausible tensor count in " +
                            context_);
    std::vector<Tensor> out;
    out.reserve(count);
    for (u64 i = 0; i < count; ++i) {
      const u32 rank = pod<u32>(what);
      if (rank > 8)
        throw SimulationError("LearnerCheckpoint: implausible rank in " +
                              context_);
      std::vector<i64> dims(rank);
      for (u32 d = 0; d < rank; ++d) {
        dims[d] = pod<i64>(what);
        if (dims[d] <= 0 || dims[d] > (i64{1} << 32))
          throw SimulationError("LearnerCheckpoint: implausible dim in " +
                                context_);
      }
      Tensor t{Shape(dims)};
      const size_t bytes = static_cast<size_t>(t.numel()) * sizeof(f32);
      if (blob_.size() - pos_ < bytes)
        throw SimulationError("LearnerCheckpoint: truncated " +
                              std::string(what) + " payload in " + context_);
      std::memcpy(t.data(), blob_.data() + pos_, bytes);
      pos_ += bytes;
      out.push_back(std::move(t));
    }
    return out;
  }

  size_t remaining() const { return blob_.size() - pos_; }

 private:
  const std::string& blob_;
  const std::string& context_;
  size_t pos_ = 0;
};

}  // namespace

std::string LearnerCheckpoint::serialize() const {
  std::string out;
  put(out, kMagic);
  put(out, kVersion);
  put(out, rounds);
  put(out, steps);
  put(out, samples_streamed);
  put(out, publishes);
  put(out, rollbacks);
  put(out, baseline_accuracy);
  put(out, best_accuracy);
  put(out, last_accuracy);
  put(out, image_generation);
  put_tensors(out, params);
  put_tensors(out, velocity);
  return out;
}

LearnerCheckpoint LearnerCheckpoint::deserialize(
    const std::string& blob, const std::string& context) {
  Cursor cur(blob, context);
  if (cur.pod<u32>("magic") != kMagic)
    throw SimulationError("LearnerCheckpoint: bad magic in " + context);
  const u32 version = cur.pod<u32>("version");
  if (version != kVersion)
    throw SimulationError("LearnerCheckpoint: unsupported version " +
                          std::to_string(version) + " in " + context);
  LearnerCheckpoint cp;
  cp.rounds = cur.pod<i64>("rounds");
  cp.steps = cur.pod<i64>("steps");
  cp.samples_streamed = cur.pod<i64>("samples_streamed");
  cp.publishes = cur.pod<i64>("publishes");
  cp.rollbacks = cur.pod<i64>("rollbacks");
  cp.baseline_accuracy = cur.pod<f64>("baseline_accuracy");
  cp.best_accuracy = cur.pod<f64>("best_accuracy");
  cp.last_accuracy = cur.pod<f64>("last_accuracy");
  cp.image_generation = cur.pod<u64>("image_generation");
  cp.params = cur.tensors("params");
  cp.velocity = cur.tensors("velocity");
  if (cur.remaining() != 0)
    throw SimulationError("LearnerCheckpoint: trailing garbage in " +
                          context);
  return cp;
}

}  // namespace msh
