// Train-while-serve: a continual-learning lane that fine-tunes the Rep
// path + classifier of a *dedicated trainer model* on SRAM PEs while the
// ServingEngine keeps answering traffic from its own replicas, and
// publishes improved candidates through the zero-downtime swap path.
//
// Isolation model: the lane never touches the engine's serving model or
// replicas. At construction the trainer model mirrors the served weights
// (RepNetModel::copy_state_from) and a trainer-side executor replica is
// calibrated on the same data as the engine, so a published image is
// exactly what the engine would have deployed from the adapted weights.
//
// One training step is hardware-in-the-loop (paper §4, Fig 6-2):
//
//   features = trainer_model.forward_features(x)     (software; frozen
//                                                     backbone + Rep path)
//   loss     = head.train_step(features, y, &e_x)    (SRAM PE forward,
//                                                     transposed-PE error
//                                                     prop eq. 1, digital
//                                                     grad eq. 2, update +
//                                                     redeploy eq. 3)
//   trainer_model.backward_features(e_x)             (Rep-path gradients
//                                                     from the propagated
//                                                     hardware error)
//   sgd.step()                                       (Rep params only)
//
// Every `steps_per_round` steps the lane evaluates a re-quantized
// candidate on the stream's holdout split and applies the gate:
//   improvement >= min_accuracy_gain  -> export image, swap_model()
//   regression  >  rollback_margin    -> restore last-good weights,
//                                        reset optimizer state
//   otherwise                         -> keep training, no publish
// A regressing candidate is therefore never promoted.
//
// Determinism: every decision is a pure function of (seed, stream seed,
// batch, steps_per_round) — sample order, poison noise, the gate, and
// the exported image bytes. Wall-clock only paces the lane (duty-cycle
// sleeps between rounds); it never feeds a decision, so two runs at the
// same seed publish bit-identical images regardless of scheduling.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "deploy/pim_trainer.h"
#include "nn/optimizer.h"
#include "runtime/continual/checkpoint.h"
#include "runtime/continual/task_stream.h"
#include "runtime/serving_engine.h"

namespace msh {

struct ContinualLearnerOptions {
  /// Seeds every lane-local RNG (head init, poison noise). The sample
  /// order comes from the TaskStream's own seed.
  u64 seed = 1;
  i64 batch = 16;           ///< samples per training step
  i64 steps_per_round = 8;  ///< steps between candidate evaluations
  /// Rounds run() executes before returning; 0 = until stop().
  i64 max_rounds = 0;
  // Rep-path SGD (software side).
  f32 rep_lr = 0.02f;
  f32 rep_momentum = 0.9f;
  f32 rep_weight_decay = 0.0f;
  /// Classifier-head learning rate (in-PIM trainer).
  f32 head_lr = 0.05f;
  /// Publish gate: holdout accuracy must beat the best published value
  /// by at least this margin.
  f64 min_accuracy_gain = 0.005;
  /// Rollback gate: a candidate this far *below* best restores the
  /// last-good weights and resets optimizer state.
  f64 rollback_margin = 0.05;
  i64 holdout_batch = 32;
  /// Fraction of lane wall time spent training; the remainder is slept
  /// between rounds, yielding the host to inference workers. 1.0 never
  /// sleeps. Pacing only — results are invariant to this knob.
  f64 duty_cycle = 1.0;
  /// Passed through to every publish's swap_model() roll.
  SwapOptions swap = {};
  /// Test hook: corrupt the Rep-path weights with seeded Gaussian noise
  /// after this round's training steps (0-indexed; -1 disables) — the
  /// gate must reject the candidate and roll it back.
  i64 poison_round = -1;
  f32 poison_stddev = 0.5f;
  /// Resume from a durable checkpoint instead of starting fresh — the
  /// power-loss recovery path (see runtime/recovery). Restores counters,
  /// gate state, the learnable params, the SGD momentum buffers, and
  /// skips the baseline holdout evaluation (the checkpointed value is
  /// authoritative). The caller must construct the TaskStream with the
  /// original seed; the learner fast-forwards it by samples_streamed so
  /// the sample sequence continues exactly where the crashed lane left
  /// off. Null starts a fresh lane.
  std::shared_ptr<const LearnerCheckpoint> resume;
};

class ContinualLearner {
 public:
  /// `trainer_model` must share the engine model's architecture; its
  /// weights are overwritten with a mirror of the served weights.
  /// `calibration` must be the dataset the engine was calibrated on, so
  /// published images carry the same activation scales the serving
  /// replicas use. The engine must outlive the learner.
  ContinualLearner(ServingEngine& engine, RepNetModel& trainer_model,
                   TaskStream stream, const Dataset& calibration,
                   ContinualLearnerOptions options = {});
  ~ContinualLearner();

  ContinualLearner(const ContinualLearner&) = delete;
  ContinualLearner& operator=(const ContinualLearner&) = delete;

  /// Launches the lane thread (no-op when already running).
  void start();
  /// Signals the lane to stop after its current round and joins it.
  void stop();

  /// One synchronous train-evaluate-gate round on the calling thread.
  /// For deterministic tests; do not mix with a running lane thread.
  void run_round();

  /// Snapshots the lane into a durable checkpoint (counters, gate state,
  /// params, momentum). `image_generation` stamps the durable image
  /// generation being served, so recovery can report lost rounds. Call
  /// between rounds (or after stop()); never while the lane thread runs.
  /// Note: a rollback after resume restores the *checkpointed* params —
  /// the last-good anchor re-bases to the resume point.
  LearnerCheckpoint checkpoint(u64 image_generation = 0);

  // Lane state, safe to read from any thread.
  i64 steps() const { return steps_.load(std::memory_order_relaxed); }
  i64 rounds() const { return rounds_.load(std::memory_order_relaxed); }
  i64 publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  i64 rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  f64 baseline_accuracy() const { return baseline_accuracy_; }
  f64 best_accuracy() const {
    return best_accuracy_.load(std::memory_order_relaxed);
  }
  f64 last_accuracy() const {
    return last_accuracy_.load(std::memory_order_relaxed);
  }

  /// The most recently published image (null before the first publish).
  /// Safe to read after stop() or between synchronous run_round() calls.
  const std::shared_ptr<const DeploymentImage>& last_published() const {
    return last_published_;
  }

  const TaskStream& stream() const { return stream_; }

 private:
  void run();
  f64 train_steps_once();  ///< one batch step; returns its loss
  void sync_head_to_model();
  void poison_rep_path();

  ServingEngine& engine_;
  RepNetModel& trainer_model_;
  TaskStream stream_;
  ContinualLearnerOptions options_;
  /// Trainer-side executor bound to trainer_model_: calibration source,
  /// candidate re-quantization (clone) and image export.
  std::unique_ptr<PimRepNetExecutor> trainer_exec_;
  HybridCore head_core_;  ///< dedicated SRAM arrays for the head trainer
  std::unique_ptr<PimLinearTrainer> head_;
  std::unique_ptr<Sgd> sgd_;
  Rng poison_rng_;
  i64 head_cycles_seen_ = 0;  ///< modeled_cycles() already reported
  f64 baseline_accuracy_ = 0.0;
  std::vector<Tensor> last_good_;  ///< learnable-param snapshot
  std::shared_ptr<const DeploymentImage> last_published_;

  std::atomic<i64> steps_{0};
  std::atomic<i64> rounds_{0};
  std::atomic<i64> publishes_{0};
  std::atomic<i64> rollbacks_{0};
  std::atomic<f64> best_accuracy_{0.0};
  std::atomic<f64> last_accuracy_{0.0};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
  bool running_ = false;
};

}  // namespace msh
