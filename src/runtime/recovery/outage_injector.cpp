#include "runtime/recovery/outage_injector.h"

#include "common/logging.h"

namespace msh {

OutageInjector::OutageInjector(ServingEngine& engine,
                               std::vector<OutageEvent> schedule,
                               f64 retention_tau_s)
    : engine_(engine),
      schedule_(std::move(schedule)),
      retention_tau_s_(retention_tau_s) {
  for (size_t i = 1; i < schedule_.size(); ++i)
    MSH_REQUIRE(schedule_[i - 1].at_us <= schedule_[i].at_us &&
                "outage schedule must be sorted by fire time");
}

bool OutageInjector::poll(f64 elapsed_us) {
  if (next_ >= static_cast<i64>(schedule_.size())) return false;
  const OutageEvent& event = schedule_[static_cast<size_t>(next_)];
  if (elapsed_us < event.at_us) return false;
  ++next_;
  log_warn("outage injector: firing event ", next_, "/", schedule_.size(),
           " at t=", elapsed_us / 1e6, " s (scheduled ", event.at_us / 1e6,
           " s, outage ", event.outage_s, " s)");
  ServingEngine::PowerFailureSpec spec;
  spec.outage_s = event.outage_s;
  spec.seed = event.seed;
  spec.retention_tau_s = retention_tau_s_;
  engine_.power_fail(spec);
  return true;
}

const OutageEvent& OutageInjector::last_fired() const {
  MSH_REQUIRE(next_ > 0 && "no event has fired yet");
  return schedule_[static_cast<size_t>(next_ - 1)];
}

}  // namespace msh
