#include "runtime/recovery/recovery_manager.h"

#include "common/logging.h"
#include "common/stopwatch.h"

namespace msh {

RecoveryReport RecoveryManager::recover(ServingEngine& engine,
                                        const RecoveryOptions& options) {
  MSH_REQUIRE(options.rto_budget_us >= 0.0);
  RecoveryReport report;
  const f64 start_us = monotonic_now_us();

  // 1. Durable truth: the newest snapshot that parses clean. A torn
  // publish rolls back to the previous generation here, never inside
  // the engine.
  DurableState::LoadResult loaded = durable_.load_last_good();
  report.snapshots_skipped = loaded.candidates_skipped;
  report.image_generation = loaded.generation;
  report.booted_from_image = loaded.image != nullptr;

  // 2. Training-lane state: longest intact journal prefix, newest valid
  // checkpoint. Replayed before the restart so the replay cost lands
  // inside the reported RTO.
  DurableState::CheckpointReplay replay = durable_.replay_last_checkpoint();
  report.journal_records_replayed = replay.records_replayed;
  report.journal_bytes_dropped = replay.bytes_dropped;
  report.journal_tail_torn = replay.tail_torn;
  report.checkpoint = replay.checkpoint;
  engine.metrics().record_journal_replay(replay.records_replayed,
                                         replay.bytes_dropped);

  // 3. Warm restart with verify-then-promote onto the recovered image.
  ServingEngine::RestartOptions restart;
  restart.image = loaded.image;
  report.engine = engine.restart(restart);
  report.ok = report.engine.ok;
  report.error = report.engine.error;
  report.rto_us = monotonic_now_us() - start_us;
  report.within_rto_budget = options.rto_budget_us <= 0.0 ||
                             report.rto_us <= options.rto_budget_us;

  if (report.ok) {
    log_info("recovery complete in ", report.rto_us / 1000.0, " ms: ",
             report.booted_from_image
                 ? "generation " + std::to_string(report.image_generation)
                 : std::string("no durable image (provenance boot)"),
             ", ", report.snapshots_skipped, " torn snapshot(s) skipped, ",
             report.journal_records_replayed, " journal record(s), ",
             report.journal_bytes_dropped, " torn byte(s) dropped");
  } else {
    log_error("recovery failed: ", report.error);
  }
  return report;
}

}  // namespace msh
