#include "runtime/recovery/durable_state.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace msh {

namespace fs = std::filesystem;

DurableState::DurableState(std::string dir) : dir_(std::move(dir)) {
  MSH_REQUIRE(!dir_.empty());
  std::error_code ec;
  fs::create_directories(dir_, ec);
  MSH_REQUIRE(!ec && "DurableState: cannot create durable directory");
}

std::string DurableState::journal_path() const {
  return (fs::path(dir_) / "learner.journal").string();
}

std::string DurableState::image_filename(u64 generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "image-%08llu.msh",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string DurableState::image_path(u64 generation) const {
  return (fs::path(dir_) / image_filename(generation)).string();
}

void DurableState::publish_image(const DeploymentImage& image,
                                 TornMode torn, i64 torn_after_bytes) {
  const std::string path = image_path(image.generation());
  switch (torn) {
    case TornMode::kNone:
      image.save(path);  // serialize + write temp + atomic rename
      return;
    case TornMode::kCrashBeforeRename: {
      // The temp file made it to the medium in full; the rename — the
      // commit point — never happened. The previous generation is still
      // the durable truth and this stray must not be mistaken for it.
      const std::string blob = image.serialize();
      std::ofstream os(path + ".tmp", std::ios::binary | std::ios::trunc);
      MSH_REQUIRE(os.good() && "DurableState: cannot write torn temp");
      os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      return;
    }
    case TornMode::kPartialPublish: {
      // No atomic rename on this medium: the crash left a prefix of the
      // new snapshot under the final name. The loader must reject it
      // and roll back to the previous generation.
      const std::string blob = image.serialize();
      MSH_REQUIRE(torn_after_bytes >= 0 &&
                  torn_after_bytes <= static_cast<i64>(blob.size()));
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      MSH_REQUIRE(os.good() && "DurableState: cannot write torn snapshot");
      os.write(blob.data(), static_cast<std::streamsize>(torn_after_bytes));
      return;
    }
  }
}

DurableState::LoadResult DurableState::load_last_good() {
  LoadResult result;
  struct Candidate {
    u64 generation;
    fs::path path;
  };
  std::vector<Candidate> candidates;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      // A crashed publish never reached its rename; the temp is garbage
      // by definition (the commit point is the rename itself).
      std::error_code ec;
      fs::remove(entry.path(), ec);
      log_info("durable state: removed stray temp ", name);
      continue;
    }
    // image-%08llu.msh
    if (name.rfind("image-", 0) != 0 || name.size() < 11 ||
        name.substr(name.size() - 4) != ".msh")
      continue;
    const std::string digits = name.substr(6, name.size() - 10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    candidates.push_back({std::stoull(digits), entry.path()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.generation > b.generation;
            });
  for (const Candidate& candidate : candidates) {
    try {
      auto image = std::make_shared<DeploymentImage>(
          DeploymentImage::load(candidate.path.string()));
      if (image->generation() != candidate.generation)
        throw SimulationError(
            "generation mismatch: filename says " +
            std::to_string(candidate.generation) + ", header says " +
            std::to_string(image->generation()));
      result.image = std::move(image);
      result.generation = candidate.generation;
      return result;
    } catch (const std::exception& e) {
      // Corrupt or torn: roll back to the next-newest generation.
      ++result.candidates_skipped;
      result.skipped.push_back(candidate.path.filename().string() + ": " +
                               e.what());
      log_warn("durable state: skipping ", candidate.path.filename().string(),
               " (", e.what(), ")");
    }
  }
  return result;  // nothing durable (or nothing intact): first boot
}

void DurableState::append_checkpoint(const LearnerCheckpoint& checkpoint,
                                     i64 torn_after_bytes) {
  Journal journal(journal_path());
  journal.append(checkpoint.serialize(), torn_after_bytes);
}

DurableState::CheckpointReplay DurableState::replay_last_checkpoint() {
  CheckpointReplay result;
  const JournalReplay replay = Journal::replay(journal_path());
  result.records_replayed = static_cast<i64>(replay.records.size());
  result.bytes_dropped = replay.bytes_dropped;
  result.tail_torn = replay.tail_torn;
  for (auto it = replay.records.rbegin(); it != replay.records.rend();
       ++it) {
    try {
      result.checkpoint = std::make_shared<LearnerCheckpoint>(
          LearnerCheckpoint::deserialize(*it, journal_path()));
      return result;
    } catch (const std::exception& e) {
      log_warn("durable state: journal record failed checkpoint "
               "validation despite an intact CRC (",
               e.what(), "); trying the previous record");
    }
  }
  return result;
}

}  // namespace msh
