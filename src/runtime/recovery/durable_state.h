// Crash-consistent durable state for the serving stack: a directory of
// generation-numbered DeploymentImage snapshots (each published with an
// atomic write-temp-then-rename) plus the continual learner's
// checkpoint journal (CRC-framed append-only log, deploy/journal.h).
//
// The invariant the loader enforces: recovery NEVER lands on a
// half-written artifact. A crash mid-publish leaves either a stray
// *.tmp (ignored and cleaned) or — on media without atomic rename — a
// truncated/corrupt candidate, which the versioned image loader rejects
// with a distinct error; load_last_good() then rolls back to the newest
// generation that parses clean. Both torn shapes are injectable as test
// hooks so the exhaustive truncation-corpus tests can prove it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "deploy/image_io.h"
#include "deploy/journal.h"
#include "runtime/continual/checkpoint.h"

namespace msh {

class DurableState {
 public:
  /// Opens (creating if needed) the durable directory.
  explicit DurableState(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string journal_path() const;
  /// Snapshot filename for a generation (relative to dir()).
  static std::string image_filename(u64 generation);
  std::string image_path(u64 generation) const;

  /// How a simulated crash tears the next publish_image().
  enum class TornMode {
    kNone,               ///< normal atomic publish
    kCrashBeforeRename,  ///< full temp file written, rename never ran
    /// First `torn_after_bytes` bytes land directly in the final path —
    /// media without atomic rename, or a torn sector.
    kPartialPublish,
  };

  /// Publishes `image` as its generation's snapshot. With a torn mode
  /// the publish "crashes" as described and the previous generation must
  /// stay the durable truth.
  void publish_image(const DeploymentImage& image,
                     TornMode torn = TornMode::kNone,
                     i64 torn_after_bytes = 0);

  struct LoadResult {
    /// Newest snapshot that parses clean; null when nothing durable
    /// exists yet (first boot).
    std::shared_ptr<const DeploymentImage> image;
    u64 generation = 0;
    i64 candidates_skipped = 0;        ///< corrupt/torn files rolled past
    std::vector<std::string> skipped;  ///< one reason per skipped file
  };

  /// Scans the directory newest-generation-first and returns the first
  /// snapshot that loads clean (magic, structure, CRC, and a
  /// filename/header generation cross-check). Stray *.tmp files from a
  /// crashed publish are deleted. Never throws on a corrupt candidate —
  /// corruption means "roll back further", not "fail recovery".
  LoadResult load_last_good();

  /// Appends a learner checkpoint frame to the journal (same
  /// torn_after_bytes test hook as Journal::append).
  void append_checkpoint(const LearnerCheckpoint& checkpoint,
                         i64 torn_after_bytes = -1);

  struct CheckpointReplay {
    /// Newest intact checkpoint; null when the journal has none.
    std::shared_ptr<const LearnerCheckpoint> checkpoint;
    i64 records_replayed = 0;  ///< intact frames in the journal
    i64 bytes_dropped = 0;     ///< torn tail discarded
    bool tail_torn = false;
  };

  /// Replays the journal's longest intact prefix and deserializes the
  /// last checkpoint. A frame whose CRC passed but whose payload fails
  /// checkpoint validation is skipped (next-newest wins) — belt and
  /// suspenders.
  CheckpointReplay replay_last_checkpoint();

 private:
  std::string dir_;
};

}  // namespace msh
