// Orchestrates cold-boot recovery after a power interruption: load the
// newest intact durable snapshot (rolling back past torn publishes),
// replay the learner journal's last intact checkpoint, warm-restart the
// engine onto the recovered image with verify-then-promote, and account
// for recovery time and data loss. The MRAM half of the hybrid core is
// what makes the warm path cheap: the non-volatile arrays come back with
// only retention drift (scrubbed by SEC-DED), so recovery re-programs
// just the volatile SRAM arrays unless verification demands more.
#pragma once

#include <memory>
#include <string>

#include "runtime/recovery/durable_state.h"
#include "runtime/serving_engine.h"

namespace msh {

struct RecoveryOptions {
  /// Recovery-time objective: wall-time budget for recover() (load +
  /// replay + restart). 0 disables the check. Exceeding it does NOT
  /// fail the recovery (the engine is back up either way) — it clears
  /// `within_rto_budget` for the caller's gate.
  f64 rto_budget_us = 0.0;
};

struct RecoveryReport {
  bool ok = false;    ///< engine is serving again
  std::string error;  ///< empty when ok
  f64 rto_us = 0.0;   ///< end-to-end recover() wall time
  bool within_rto_budget = true;
  /// Durable image generation recovered onto (0 + !booted_from_image
  /// when the store was empty and replicas recovered onto their own
  /// provenance).
  u64 image_generation = 0;
  bool booted_from_image = false;
  i64 snapshots_skipped = 0;  ///< torn/corrupt generations rolled past
  ServingEngine::RestartReport engine;  ///< per-worker warm/cold detail
  // Journal replay (training-lane data loss).
  i64 journal_records_replayed = 0;
  i64 journal_bytes_dropped = 0;
  bool journal_tail_torn = false;
  /// Newest intact learner checkpoint — hand it to a fresh
  /// ContinualLearner via ContinualLearnerOptions::resume. Null when the
  /// journal held none (the lane restarts from scratch; everything since
  /// the boot image is the data loss).
  std::shared_ptr<const LearnerCheckpoint> checkpoint;
};

class RecoveryManager {
 public:
  /// `durable` must outlive the manager.
  explicit RecoveryManager(DurableState& durable) : durable_(durable) {}

  /// Full recovery of a powered-off engine. Safe to call again with the
  /// store repaired if it fails (the engine stays down on failure).
  /// Records recovery + journal-replay metrics on the engine.
  RecoveryReport recover(ServingEngine& engine,
                         const RecoveryOptions& options = {});

 private:
  DurableState& durable_;
};

}  // namespace msh
