// Couples a seeded outage schedule (sim/outage.h) to a live
// ServingEngine: the bench advances its experiment clock and poll()
// fires every due event as a ServingEngine::power_fail. The injector is
// passive between polls — no thread of its own — so outages land at
// deterministic points in the caller's control flow, which is what the
// same-seed recovery-determinism gate needs.
#pragma once

#include <vector>

#include "runtime/serving_engine.h"
#include "sim/outage.h"

namespace msh {

class OutageInjector {
 public:
  /// `schedule` must be sorted by fire time (make_outage_schedule's
  /// output is). The engine must outlive the injector.
  OutageInjector(ServingEngine& engine, std::vector<OutageEvent> schedule,
                 f64 retention_tau_s = 0.0);

  /// Fires the next due event, if any: the first unfired event with
  /// at_us <= elapsed_us triggers engine.power_fail. At most one event
  /// fires per poll — the engine is down afterwards, and the caller
  /// must recover it before the next event can meaningfully land.
  /// Returns true when an outage fired (the caller should now run
  /// recovery).
  bool poll(f64 elapsed_us);

  /// The event poll() just fired (valid when the last poll returned
  /// true).
  const OutageEvent& last_fired() const;

  i64 fired() const { return next_; }
  i64 remaining() const {
    return static_cast<i64>(schedule_.size()) - next_;
  }
  const std::vector<OutageEvent>& schedule() const { return schedule_; }

 private:
  ServingEngine& engine_;
  std::vector<OutageEvent> schedule_;
  f64 retention_tau_s_;
  i64 next_ = 0;  ///< first unfired schedule index
};

}  // namespace msh
