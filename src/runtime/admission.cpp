#include "runtime/admission.h"

#include <algorithm>

namespace msh {

TokenBucket::TokenBucket(f64 rate_per_s, f64 burst, f64 now_us)
    : rate_per_us_(rate_per_s / 1e6), burst_(burst), tokens_(burst),
      last_us_(now_us) {
  MSH_REQUIRE(rate_per_s >= 0.0);
  MSH_REQUIRE(rate_per_s == 0.0 || burst >= 1.0);
}

bool TokenBucket::try_acquire(f64 now_us) {
  if (rate_per_us_ <= 0.0) return true;
  const std::lock_guard<std::mutex> guard(mutex_);
  tokens_ = std::min(burst_, tokens_ + (now_us - last_us_) * rate_per_us_);
  last_us_ = now_us;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionGate::AdmissionGate(const AdmissionOptions& options, f64 now_us)
    : buckets_{TokenBucket(options.per_class[0].rate_per_s,
                           options.per_class[0].burst, now_us),
               TokenBucket(options.per_class[1].rate_per_s,
                           options.per_class[1].burst, now_us),
               TokenBucket(options.per_class[2].rate_per_s,
                           options.per_class[2].burst, now_us)} {
  static_assert(kPriorityClasses == 3);
}

bool AdmissionGate::admit(Priority priority, f64 now_us) {
  return buckets_[static_cast<size_t>(priority)].try_acquire(now_us);
}

}  // namespace msh
