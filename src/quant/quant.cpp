#include "quant/quant.h"

#include <cmath>

namespace msh {

QuantParams QuantParams::calibrate(const Tensor& t, i32 bits) {
  MSH_REQUIRE(bits >= 2 && bits <= 8);
  QuantParams p;
  p.qmax = (1 << (bits - 1)) - 1;
  p.qmin = -p.qmax;  // symmetric: reserve -2^(b-1) to keep negation exact
  const f32 amax = t.numel() ? t.abs_max() : 0.0f;
  p.scale = amax > 0.0f ? amax / static_cast<f32>(p.qmax) : 1.0f;
  return p;
}

i32 QuantParams::quantize(f32 v) const {
  const f32 q = v / scale;
  // Round half to even, matching typical fixed-point RTL rounding.
  const i32 r = static_cast<i32>(std::nearbyint(q));
  return std::min(qmax, std::max(qmin, r));
}

QuantizedTensor quantize(const Tensor& t, const QuantParams& params) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.params = params;
  q.data.resize(static_cast<size_t>(t.numel()));
  for (i64 i = 0; i < t.numel(); ++i)
    q.data[static_cast<size_t>(i)] = static_cast<i8>(params.quantize(t[i]));
  return q;
}

QuantizedTensor quantize(const Tensor& t, i32 bits) {
  return quantize(t, QuantParams::calibrate(t, bits));
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  for (i64 i = 0; i < q.numel(); ++i)
    t[i] = q.params.dequantize(q.at(i));
  return t;
}

Tensor fake_quantize(const Tensor& t, i32 bits) {
  return dequantize(quantize(t, bits));
}

std::vector<i32> quantized_matmul_raw(const QuantizedTensor& x,
                                      const QuantizedTensor& w) {
  MSH_REQUIRE(x.shape.rank() == 2 && w.shape.rank() == 2);
  const i64 b = x.shape[0], k = x.shape[1], c = w.shape[1];
  MSH_REQUIRE(w.shape[0] == k);
  std::vector<i32> y(static_cast<size_t>(b * c), 0);
  for (i64 i = 0; i < b; ++i) {
    for (i64 kk = 0; kk < k; ++kk) {
      const i32 xv = x.at(i * k + kk);
      if (xv == 0) continue;
      for (i64 j = 0; j < c; ++j) {
        y[static_cast<size_t>(i * c + j)] +=
            xv * static_cast<i32>(w.at(kk * c + j));
      }
    }
  }
  return y;
}

Tensor quantized_matmul(const QuantizedTensor& x, const QuantizedTensor& w) {
  const auto raw = quantized_matmul_raw(x, w);
  const i64 b = x.shape[0], c = w.shape[1];
  Tensor y(Shape{b, c});
  const f32 s = x.params.scale * w.params.scale;
  for (i64 i = 0; i < b * c; ++i)
    y[i] = s * static_cast<f32>(raw[static_cast<size_t>(i)]);
  return y;
}

}  // namespace msh
