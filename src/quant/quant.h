// INT8 post-training quantization (paper §5.1) with the exact integer
// semantics the bit-serial PIM hardware implements: symmetric per-tensor
// scaling, round-to-nearest-even, i32 accumulation.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace msh {

/// Symmetric quantization parameters: real = scale * q, q in [qmin, qmax].
struct QuantParams {
  f32 scale = 1.0f;
  i32 qmin = -127;
  i32 qmax = 127;

  /// Calibrates scale from the tensor's absolute maximum.
  static QuantParams calibrate(const Tensor& t, i32 bits = 8);

  i32 quantize(f32 v) const;
  f32 dequantize(i32 q) const { return scale * static_cast<f32>(q); }
};

/// An integer tensor plus its dequantization scale.
struct QuantizedTensor {
  Shape shape;
  std::vector<i8> data;
  QuantParams params;

  i64 numel() const { return static_cast<i64>(data.size()); }
  i8 at(i64 flat) const { return data[static_cast<size_t>(flat)]; }
};

/// Quantizes to INT8.
QuantizedTensor quantize(const Tensor& t, const QuantParams& params);
QuantizedTensor quantize(const Tensor& t, i32 bits = 8);

/// Dequantizes back to float.
Tensor dequantize(const QuantizedTensor& q);

/// Quantize-dequantize ("fake quant"): the float tensor the INT8 model
/// effectively computes with. Used to evaluate INT8 accuracy in the
/// algorithm stack.
Tensor fake_quantize(const Tensor& t, i32 bits = 8);

/// Integer matmul with i32 accumulation:
/// y_q[b,c] = sum_k x_q[b,k] * w_q[k,c];  y = sx*sw*y_q.
/// Returns the dequantized float result. This is the golden model the
/// bit-serial PE simulators are checked against bit-exactly (on y_q).
Tensor quantized_matmul(const QuantizedTensor& x, const QuantizedTensor& w);

/// Raw integer accumulator output of the same matmul, before scaling —
/// the value the PE adder trees/accumulators must reproduce exactly.
std::vector<i32> quantized_matmul_raw(const QuantizedTensor& x,
                                      const QuantizedTensor& w);

}  // namespace msh
