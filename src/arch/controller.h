// Core control unit (paper Fig 1, the per-core "Ctrl." block): a small
// command-stream machine the SIMT scheduler programs. A program chains
// deployed weight matrices into multi-layer flows entirely on the core:
// load activations, run a deployment, apply digital ReLU + requantization
// (the "Global ReLU" of Table 2), write back — with a cycle-stamped trace
// of every command.
#pragma once

#include <span>
#include <vector>

#include "arch/accelerator.h"

namespace msh {

enum class OpCode : u8 {
  kLoadActivations,  ///< arg0 = expected length; pulls the external input
  kMatvec,           ///< arg0 = deployment handle; acc += PE result
  kReluRequant,      ///< arg0 = right-shift; acc -> INT8 activations
  kWriteBack,        ///< emit acc to the output buffer
  kBarrier,          ///< scheduling fence (trace marker)
};

struct Command {
  OpCode op;
  i64 arg0 = 0;
  i64 arg1 = 0;
};

struct TraceEntry {
  size_t index;    ///< command position in the program
  OpCode op;
  i64 start_cycle;
  i64 cycles;
};

struct ProgramResult {
  std::vector<i32> output;
  std::vector<TraceEntry> trace;
  i64 total_cycles = 0;
};

class CoreController {
 public:
  explicit CoreController(HybridCore& core);

  /// Appends a command; returns *this for chaining.
  CoreController& emit(Command command);
  CoreController& load_activations(i64 length);
  CoreController& matvec(i64 handle);
  CoreController& relu_requant(i64 shift);
  CoreController& write_back();
  CoreController& barrier();

  size_t program_size() const { return program_.size(); }
  void clear_program() { program_.clear(); }

  /// Executes the program against one external input vector.
  ProgramResult run(std::span<const i8> input);

 private:
  HybridCore& core_;
  std::vector<Command> program_;
};

}  // namespace msh
