#include "arch/scheduler.h"

#include <algorithm>
#include <numeric>

namespace msh {

Scheduler::Scheduler(i64 pe_count) : pe_count_(pe_count) {
  MSH_REQUIRE(pe_count_ > 0);
}

ScheduleResult Scheduler::schedule(const std::vector<i64>& tile_cycles) const {
  ScheduleResult result;
  result.assignment.assign(tile_cycles.size(), -1);
  result.pe_cycles.assign(static_cast<size_t>(pe_count_), 0);

  std::vector<i64> order(tile_cycles.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](i64 a, i64 b) {
    return tile_cycles[static_cast<size_t>(a)] >
           tile_cycles[static_cast<size_t>(b)];
  });

  for (i64 tile : order) {
    // Least-loaded PE; ties -> lowest index.
    i64 best = 0;
    for (i64 p = 1; p < pe_count_; ++p) {
      if (result.pe_cycles[static_cast<size_t>(p)] <
          result.pe_cycles[static_cast<size_t>(best)])
        best = p;
    }
    result.assignment[static_cast<size_t>(tile)] = best;
    result.pe_cycles[static_cast<size_t>(best)] +=
        tile_cycles[static_cast<size_t>(tile)];
  }
  result.makespan = result.pe_cycles.empty()
                        ? 0
                        : *std::max_element(result.pe_cycles.begin(),
                                            result.pe_cycles.end());
  result.total_cycles =
      std::accumulate(tile_cycles.begin(), tile_cycles.end(), i64{0});
  return result;
}

}  // namespace msh
