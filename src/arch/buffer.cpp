#include "arch/buffer.h"

namespace msh {

ActivationBuffer::ActivationBuffer(i64 capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  MSH_REQUIRE(capacity_bytes_ > 0);
}

bool ActivationBuffer::load(std::span<const i8> activations) {
  if (static_cast<i64>(activations.size()) > capacity_bytes_) return false;
  data_.assign(activations.begin(), activations.end());
  bytes_loaded_ += static_cast<i64>(activations.size());
  return true;
}

}  // namespace msh
