// Off-chip memory model (paper Fig 1, block 1): stores local data and
// parameters. Accounted with a flat per-bit energy and a bandwidth-limited
// latency — enough fidelity for the architecture-level comparisons, where
// off-chip traffic is identical across the designs being compared.
#pragma once

#include "common/units.h"

namespace msh {

class OffChipMemory {
 public:
  /// `bandwidth_bits_per_ns`: e.g. 128 => 16 GB/s.
  explicit OffChipMemory(f64 bandwidth_bits_per_ns = 128.0);

  void read(i64 bits);
  void write(i64 bits);

  i64 bits_read() const { return bits_read_; }
  i64 bits_written() const { return bits_written_; }
  TimeNs transfer_time() const;

 private:
  f64 bandwidth_bits_per_ns_;
  i64 bits_read_ = 0;
  i64 bits_written_ = 0;
};

}  // namespace msh
