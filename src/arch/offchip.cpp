#include "arch/offchip.h"

namespace msh {

OffChipMemory::OffChipMemory(f64 bandwidth_bits_per_ns)
    : bandwidth_bits_per_ns_(bandwidth_bits_per_ns) {
  MSH_REQUIRE(bandwidth_bits_per_ns_ > 0.0);
}

void OffChipMemory::read(i64 bits) {
  MSH_REQUIRE(bits >= 0);
  bits_read_ += bits;
}

void OffChipMemory::write(i64 bits) {
  MSH_REQUIRE(bits >= 0);
  bits_written_ += bits;
}

TimeNs OffChipMemory::transfer_time() const {
  return TimeNs::ns(static_cast<f64>(bits_read_ + bits_written_) /
                    bandwidth_bits_per_ns_);
}

}  // namespace msh
