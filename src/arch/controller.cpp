#include "arch/controller.h"

#include <algorithm>

namespace msh {

CoreController::CoreController(HybridCore& core) : core_(core) {}

CoreController& CoreController::emit(Command command) {
  program_.push_back(command);
  return *this;
}

CoreController& CoreController::load_activations(i64 length) {
  return emit({OpCode::kLoadActivations, length});
}
CoreController& CoreController::matvec(i64 handle) {
  return emit({OpCode::kMatvec, handle});
}
CoreController& CoreController::relu_requant(i64 shift) {
  return emit({OpCode::kReluRequant, shift});
}
CoreController& CoreController::write_back() {
  return emit({OpCode::kWriteBack});
}
CoreController& CoreController::barrier() {
  return emit({OpCode::kBarrier});
}

ProgramResult CoreController::run(std::span<const i8> input) {
  ProgramResult result;
  std::vector<i8> activations;   // current INT8 operand vector
  std::vector<i32> accumulator;  // register file
  i64 cycle = 0;

  for (size_t pc = 0; pc < program_.size(); ++pc) {
    const Command& cmd = program_[pc];
    TraceEntry entry{pc, cmd.op, cycle, 0};
    switch (cmd.op) {
      case OpCode::kLoadActivations: {
        MSH_REQUIRE(static_cast<i64>(input.size()) == cmd.arg0);
        activations.assign(input.begin(), input.end());
        // Streaming in over the bus, 256 bits per cycle.
        entry.cycles = (cmd.arg0 * 8 + 255) / 256;
        break;
      }
      case OpCode::kMatvec: {
        MSH_REQUIRE(!activations.empty());
        accumulator = core_.matvec(cmd.arg0, activations);
        entry.cycles = core_.last_makespan();
        break;
      }
      case OpCode::kReluRequant: {
        MSH_REQUIRE(!accumulator.empty());
        MSH_REQUIRE(cmd.arg0 >= 0 && cmd.arg0 < 32);
        activations.resize(accumulator.size());
        for (size_t i = 0; i < accumulator.size(); ++i) {
          const i32 relu = std::max(accumulator[i], 0);
          activations[i] = static_cast<i8>(
              std::min<i32>(relu >> cmd.arg0, 127));
        }
        // Global ReLU processes one word per lane-cycle, 32 lanes.
        entry.cycles =
            (static_cast<i64>(accumulator.size()) + 31) / 32;
        break;
      }
      case OpCode::kWriteBack: {
        MSH_REQUIRE(!accumulator.empty());
        result.output = accumulator;
        entry.cycles =
            (static_cast<i64>(accumulator.size()) * 32 + 255) / 256;
        break;
      }
      case OpCode::kBarrier: {
        entry.cycles = 1;
        break;
      }
    }
    cycle += entry.cycles;
    result.trace.push_back(entry);
  }
  result.total_cycles = cycle;
  return result;
}

}  // namespace msh
