// Functional hybrid core: the executable composition of Fig 1 — mapper,
// buffer, bus, scheduler, and both PE types. Deployed weight matrices run
// real sparse matvecs through the PE functional models; results are merged
// by the core's shared accumulators and verified bit-exact against the
// quantized reference in tests.
#pragma once

#include <memory>
#include <span>

#include "arch/buffer.h"
#include "arch/bus.h"
#include "arch/scheduler.h"
#include "arch/topology.h"
#include "common/thread_pool.h"
#include "kernels/arena.h"
#include "kernels/backend.h"
#include "mapping/csc_mapper.h"
#include "pim/mram_pe.h"
#include "pim/sram_pe.h"

namespace msh {

struct HybridCoreOptions {
  CoreConfig topology = {};
  i64 sram_pe_pool = 16;  ///< physical SRAM PEs (time-shared if fewer
                          ///< than tiles)
  i64 buffer_bytes = 1 << 16;
  i64 bus_width_bits = 256;
  SramMappingOptions sram_map = {};
  MramMappingOptions mram_map = {};
  /// Compute backend for matvec/matmul (DESIGN §5i): kModeled walks the
  /// functional PE datapaths with full event/cycle accounting; kRaw runs
  /// the SIMD flat-CSC kernels over the same live tile cells —
  /// bit-identical outputs, but PE/bus/buffer events stay untouched and
  /// last_makespan()/last_utilization() report zero.
  KernelBackend backend = KernelBackend::kModeled;
};

class HybridCore {
 public:
  using Options = HybridCoreOptions;

  explicit HybridCore(Options options = {});

  /// Deploys a weight matrix onto SRAM sparse PEs (learnable path).
  /// Returns a handle for execution.
  i64 deploy_sram(const QuantizedNmMatrix& w);
  /// Deploys onto MRAM sparse PEs (frozen backbone path).
  i64 deploy_mram(const QuantizedNmMatrix& w);

  /// Rewrites an existing SRAM deployment with updated weights (the
  /// continual-learning write path). Shape and packing must match the
  /// original deployment; write events accumulate on the PEs.
  void redeploy_sram(i64 handle, const QuantizedNmMatrix& w);

  /// y = x * W for INT8 x (length = dense_rows); INT32 accumulators out
  /// (length = cols).
  std::vector<i32> matvec(i64 handle, std::span<const i8> activations);

  /// Batched version: x is row-major [batch x dense_rows]. With an
  /// intra-op pool attached (see set_intra_op_pool), batch rows are
  /// sharded into contiguous lanes and executed concurrently, each lane
  /// modeling a clone of the deployment's PE tiles: outputs, PE event
  /// totals, and bus/buffer accounting are bit-identical to the
  /// sequential walk (row results land at fixed offsets; per-lane event
  /// counters merge in deterministic order), while last_makespan()
  /// becomes the busiest lane's cycle sum — the modeled time of the
  /// tile-parallel execution.
  std::vector<i32> matmul(i64 handle, std::span<const i8> activations,
                          i64 batch);

  /// Attaches a host thread pool for intra-batch (row-level) parallel
  /// matmul. Non-owning; nullptr (the default) keeps every path
  /// sequential. The pool must outlive the core or be detached first.
  void set_intra_op_pool(ThreadPool* pool) { intra_pool_ = pool; }
  ThreadPool* intra_op_pool() const { return intra_pool_; }

  /// Pointer view over one deployment's PE-resident compressed codes —
  /// the physical surface where NVM faults land and ECC scrubs repair.
  /// Only valid (non-padding) slots are exposed: padding cells never
  /// feed a MAC, so corrupting them is a no-op. Pointer order is the
  /// deterministic deploy order (PE, then slot), stable across runs.
  /// Pointers are invalidated by redeploy of the same handle.
  struct NvmCodeView {
    bool is_sram = false;
    i32 index_bits = 0;        ///< stored bits per index cell group
    std::vector<i8*> weights;  ///< INT8 weight cells
    std::vector<u8*> indices;  ///< N:M intra-group index cells
  };
  NvmCodeView nvm_codes(i64 handle);

  i64 num_deployments() const {
    return static_cast<i64>(deployments_.size());
  }
  bool deployment_is_sram(i64 handle) const;

  /// Cycle makespan of the last matvec/matmul, from the SIMT schedule
  /// over the physical PE pool.
  i64 last_makespan() const { return last_makespan_; }
  f64 last_utilization() const { return last_utilization_; }

  /// Aggregated PE events since construction (or the last reset).
  PeEventCounts pe_events() const;
  const Bus& bus() const { return bus_; }
  const ActivationBuffer& buffer() const { return buffer_; }
  i64 shared_accumulator_ops() const { return shared_acc_ops_; }
  void reset_events();

 private:
  struct Deployment {
    bool is_sram = false;
    i64 cols = 0;
    i64 dense_rows = 0;
    std::vector<std::unique_ptr<SramSparsePe>> sram_pes;
    std::vector<std::unique_ptr<MramSparsePe>> mram_pes;
    i64 pe_count() const {
      return static_cast<i64>(is_sram ? sram_pes.size() : mram_pes.size());
    }
  };

  /// One activation row's walk over a deployment's PE tiles, with no
  /// side effects on the core or the PEs: results plus the event deltas
  /// the sequential path would have produced. The unit of work each
  /// parallel lane executes.
  struct RowCompute {
    std::vector<i32> result;               ///< merged accumulators [cols]
    std::vector<PeEventCounts> pe_events;  ///< per PE, deploy order
    std::vector<i64> tile_cycles;          ///< per PE cycle cost
    i64 shared_acc_ops = 0;                ///< cross-PE partial-sum merges
    i64 makespan = 0;                      ///< SIMT schedule over the pool
    f64 utilization = 0.0;
  };
  RowCompute compute_row(const Deployment& dep,
                         std::span<const i8> activations) const;
  /// Replays one row's bus/buffer traffic and merges its event deltas
  /// into the core — the accounting half of matvec, applied in row order.
  void absorb_row(Deployment& dep, std::span<const i8> activations,
                  const RowCompute& row);

  /// Raw-backend dispatch: flattens the deployment's live tile cells
  /// into CSC form in the arena and runs the SIMD matmul, sharding
  /// columns over the intra-op pool. No accounting.
  std::vector<i32> raw_matmul(const Deployment& dep,
                              std::span<const i8> activations, i64 batch);

  Options options_;
  KernelArena arena_;  ///< raw-backend scratch, reset per dispatch
  Bus bus_;
  ActivationBuffer buffer_;
  std::vector<Deployment> deployments_;
  ThreadPool* intra_pool_ = nullptr;
  i64 last_makespan_ = 0;
  f64 last_utilization_ = 0.0;
  i64 shared_acc_ops_ = 0;
};

}  // namespace msh
