#include "arch/accelerator.h"

#include <algorithm>

#include "kernels/flat_csc.h"

namespace msh {

HybridCore::HybridCore(Options options)
    : options_(options),
      bus_(options.bus_width_bits),
      buffer_(options.buffer_bytes) {}

i64 HybridCore::deploy_sram(const QuantizedNmMatrix& w) {
  Deployment dep;
  dep.is_sram = true;
  dep.cols = w.cols();
  dep.dense_rows = w.dense_rows();
  for (auto& tile : map_to_sram_pes(w, options_.sram_map)) {
    auto pe = std::make_unique<SramSparsePe>();
    // Weight distribution rides the bus: one hop core -> PE.
    bus_.transfer(tile.rows * tile.groups * (8 + tile.cfg.index_bits()));
    pe->load(std::move(tile));
    dep.sram_pes.push_back(std::move(pe));
  }
  deployments_.push_back(std::move(dep));
  return static_cast<i64>(deployments_.size()) - 1;
}

i64 HybridCore::deploy_mram(const QuantizedNmMatrix& w) {
  Deployment dep;
  dep.is_sram = false;
  dep.cols = w.cols();
  dep.dense_rows = w.dense_rows();
  for (auto& tile : map_to_mram_pes(w, options_.mram_map)) {
    auto pe = std::make_unique<MramSparsePe>();
    i64 bits = 0;
    for (const auto& row : tile.rows)
      bits += static_cast<i64>(row.entries.size()) *
              (8 + tile.cfg.index_bits());
    bus_.transfer(bits);
    pe->program(std::move(tile));
    dep.mram_pes.push_back(std::move(pe));
  }
  deployments_.push_back(std::move(dep));
  return static_cast<i64>(deployments_.size()) - 1;
}

void HybridCore::redeploy_sram(i64 handle, const QuantizedNmMatrix& w) {
  MSH_REQUIRE(handle >= 0 &&
              handle < static_cast<i64>(deployments_.size()));
  Deployment& dep = deployments_[static_cast<size_t>(handle)];
  MSH_REQUIRE(dep.is_sram);
  MSH_REQUIRE(dep.cols == w.cols() && dep.dense_rows == w.dense_rows());
  auto tiles = map_to_sram_pes(w, options_.sram_map);
  MSH_REQUIRE(tiles.size() == dep.sram_pes.size());
  for (size_t i = 0; i < tiles.size(); ++i) {
    bus_.transfer(tiles[i].rows * tiles[i].groups *
                  (8 + tiles[i].cfg.index_bits()));
    dep.sram_pes[i]->load(std::move(tiles[i]));
  }
}

HybridCore::NvmCodeView HybridCore::nvm_codes(i64 handle) {
  MSH_REQUIRE(handle >= 0 &&
              handle < static_cast<i64>(deployments_.size()));
  Deployment& dep = deployments_[static_cast<size_t>(handle)];
  NvmCodeView view;
  view.is_sram = dep.is_sram;
  if (dep.is_sram) {
    for (auto& pe : dep.sram_pes) {
      SramPeTile& tile = pe->mutable_tile();
      view.index_bits = tile.cfg.index_bits();
      const i64 slots = tile.rows * tile.groups;
      for (i64 s = 0; s < slots; ++s) {
        if (!tile.valid[static_cast<size_t>(s)]) continue;
        view.weights.push_back(&tile.weights[static_cast<size_t>(s)]);
        view.indices.push_back(&tile.indices[static_cast<size_t>(s)]);
      }
    }
  } else {
    for (auto& pe : dep.mram_pes) {
      MramPeTile& tile = pe->mutable_tile();
      view.index_bits = tile.cfg.index_bits();
      for (auto& row : tile.rows) {
        for (auto& entry : row.entries) {
          if (!entry.valid) continue;
          view.weights.push_back(&entry.weight);
          view.indices.push_back(&entry.index);
        }
      }
    }
  }
  return view;
}

bool HybridCore::deployment_is_sram(i64 handle) const {
  MSH_REQUIRE(handle >= 0 &&
              handle < static_cast<i64>(deployments_.size()));
  return deployments_[static_cast<size_t>(handle)].is_sram;
}

HybridCore::RowCompute HybridCore::compute_row(
    const Deployment& dep, std::span<const i8> activations) const {
  RowCompute row;
  std::vector<i64> acc(static_cast<size_t>(dep.cols), 0);
  std::vector<u8> touched(static_cast<size_t>(dep.cols), 0);
  row.pe_events.resize(static_cast<size_t>(dep.pe_count()));
  row.tile_cycles.reserve(row.pe_events.size());

  auto merge = [&](const std::vector<i32>& ids,
                   const std::vector<i64>& values) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const size_t c = static_cast<size_t>(ids[i]);
      MSH_ENSURE(c < acc.size());
      if (touched[c]) ++row.shared_acc_ops;  // cross-PE partial-sum merge
      acc[c] += values[i];
      touched[c] = 1;
    }
  };

  if (dep.is_sram) {
    for (size_t i = 0; i < dep.sram_pes.size(); ++i) {
      const SramPeOutput out =
          dep.sram_pes[i]->matvec_compute(activations, row.pe_events[i]);
      row.tile_cycles.push_back(row.pe_events[i].cycles);
      merge(out.output_ids, out.values);
    }
  } else {
    for (size_t i = 0; i < dep.mram_pes.size(); ++i) {
      const MramPeOutput out =
          dep.mram_pes[i]->matvec_compute(activations, row.pe_events[i]);
      row.tile_cycles.push_back(row.pe_events[i].cycles);
      merge(out.output_ids, out.values);
    }
  }

  // SIMT schedule over the physical PE pool (one pool per tile lane).
  const i64 pe_pool = dep.is_sram
                          ? options_.sram_pe_pool
                          : options_.topology.mram_pes_per_core();
  const ScheduleResult sched = Scheduler(pe_pool).schedule(row.tile_cycles);
  row.makespan = sched.makespan;
  row.utilization = sched.utilization();

  row.result.resize(static_cast<size_t>(dep.cols));
  for (size_t c = 0; c < row.result.size(); ++c)
    row.result[c] = static_cast<i32>(acc[c]);
  return row;
}

void HybridCore::absorb_row(Deployment& dep, std::span<const i8> activations,
                            const RowCompute& row) {
  // Activations arrive over the bus into the core buffer once
  // (row-stationary: every PE pass reuses the buffered copy).
  bus_.transfer(static_cast<i64>(activations.size()) * 8);
  MSH_REQUIRE(buffer_.load(activations));
  if (dep.is_sram) {
    for (size_t i = 0; i < dep.sram_pes.size(); ++i) {
      dep.sram_pes[i]->absorb_events(row.pe_events[i]);
      buffer_.record_read(dep.sram_pes[i]->tile().rows);
    }
  } else {
    for (size_t i = 0; i < dep.mram_pes.size(); ++i) {
      dep.mram_pes[i]->absorb_events(row.pe_events[i]);
      buffer_.record_read(
          static_cast<i64>(dep.mram_pes[i]->tile().rows.size()));
    }
  }
  shared_acc_ops_ += row.shared_acc_ops;
  // Results leave over the bus.
  bus_.transfer(dep.cols * 32);
}

std::vector<i32> HybridCore::raw_matmul(const Deployment& dep,
                                        std::span<const i8> activations,
                                        i64 batch) {
  // Rebuilt from the live cells every dispatch, so fault injection,
  // scrub repairs and wear-limited programming are picked up exactly as
  // the modeled walk would see them (see kernels/flat_csc.h).
  arena_.reset();
  FlatCsc flat;
  if (dep.is_sram) {
    std::vector<const SramPeTile*> tiles;
    tiles.reserve(dep.sram_pes.size());
    for (const auto& pe : dep.sram_pes) tiles.push_back(&pe->tile());
    flat = build_flat_csc_sram(tiles, dep.cols, dep.dense_rows, arena_);
  } else {
    std::vector<const MramPeTile*> tiles;
    tiles.reserve(dep.mram_pes.size());
    for (const auto& pe : dep.mram_pes) tiles.push_back(&pe->tile());
    flat = build_flat_csc_mram(tiles, dep.cols, dep.dense_rows, arena_);
  }
  std::vector<i32> out(static_cast<size_t>(batch * dep.cols));
  raw_csc_matmul(flat, activations, batch, out, arena_, intra_pool_);
  // Cycle metrics are modeled-only: the raw backend reports zero.
  last_makespan_ = 0;
  last_utilization_ = 0.0;
  return out;
}

std::vector<i32> HybridCore::matvec(i64 handle,
                                    std::span<const i8> activations) {
  MSH_REQUIRE(handle >= 0 &&
              handle < static_cast<i64>(deployments_.size()));
  Deployment& dep = deployments_[static_cast<size_t>(handle)];
  MSH_REQUIRE(static_cast<i64>(activations.size()) == dep.dense_rows);
  if (options_.backend == KernelBackend::kRaw) {
    return raw_matmul(dep, activations, 1);
  }

  RowCompute row = compute_row(dep, activations);
  absorb_row(dep, activations, row);
  last_makespan_ = row.makespan;
  last_utilization_ = row.utilization;
  return std::move(row.result);
}

std::vector<i32> HybridCore::matmul(i64 handle,
                                    std::span<const i8> activations,
                                    i64 batch) {
  MSH_REQUIRE(handle >= 0 &&
              handle < static_cast<i64>(deployments_.size()));
  Deployment& dep = deployments_[static_cast<size_t>(handle)];
  MSH_REQUIRE(static_cast<i64>(activations.size()) ==
              batch * dep.dense_rows);
  if (options_.backend == KernelBackend::kRaw) {
    return raw_matmul(dep, activations, batch);
  }

  ThreadPool* pool = intra_pool_;
  if (pool == nullptr || pool->size() <= 1 || batch <= 1) {
    std::vector<i32> out;
    out.reserve(static_cast<size_t>(batch * dep.cols));
    i64 makespan = 0;
    for (i64 b = 0; b < batch; ++b) {
      const auto row = activations.subspan(
          static_cast<size_t>(b * dep.dense_rows),
          static_cast<size_t>(dep.dense_rows));
      const auto y = matvec(handle, row);
      makespan += last_makespan_;
      out.insert(out.end(), y.begin(), y.end());
    }
    last_makespan_ = makespan;
    return out;
  }

  // Intra-batch parallel path: contiguous row lanes, each modeling (and
  // running on) a clone of the deployment's tiles. Rows are independent
  // (private accumulators, fixed output offsets, lane-local event
  // counters), so the outputs are bit-identical to the sequential walk.
  std::vector<RowCompute> rows(static_cast<size_t>(batch));
  std::vector<i32> out(static_cast<size_t>(batch * dep.cols));
  pool->parallel_for(batch, [&](i64 begin, i64 end) {
    for (i64 b = begin; b < end; ++b) {
      const auto acts = activations.subspan(
          static_cast<size_t>(b * dep.dense_rows),
          static_cast<size_t>(dep.dense_rows));
      RowCompute row = compute_row(dep, acts);
      std::copy(row.result.begin(), row.result.end(),
                out.begin() + static_cast<size_t>(b * dep.cols));
      rows[static_cast<size_t>(b)] = std::move(row);
    }
  });

  // Deterministic accounting replay, in row order: the final bus, buffer
  // and PE event state is exactly the sequential path's.
  for (i64 b = 0; b < batch; ++b) {
    const auto acts = activations.subspan(
        static_cast<size_t>(b * dep.dense_rows),
        static_cast<size_t>(dep.dense_rows));
    absorb_row(dep, acts, rows[static_cast<size_t>(b)]);
  }
  last_utilization_ = rows.back().utilization;

  // Modeled time: lanes run concurrently on their tile clones, so the
  // batch finishes when the busiest lane does. Lane boundaries are the
  // same contiguous chunks parallel_for dispatched.
  const i64 lanes = pool->shards(batch);
  const i64 per_lane = (batch + lanes - 1) / lanes;
  i64 makespan = 0;
  for (i64 lane = 0; lane < lanes; ++lane) {
    i64 lane_cycles = 0;
    const i64 end = std::min(batch, (lane + 1) * per_lane);
    for (i64 b = lane * per_lane; b < end; ++b)
      lane_cycles += rows[static_cast<size_t>(b)].makespan;
    makespan = std::max(makespan, lane_cycles);
  }
  last_makespan_ = makespan;
  return out;
}

PeEventCounts HybridCore::pe_events() const {
  PeEventCounts total;
  for (const auto& dep : deployments_) {
    for (const auto& pe : dep.sram_pes) total += pe->events();
    for (const auto& pe : dep.mram_pes) total += pe->events();
  }
  return total;
}

void HybridCore::reset_events() {
  for (auto& dep : deployments_) {
    for (auto& pe : dep.sram_pes) pe->reset_events();
    for (auto& pe : dep.mram_pes) pe->reset_events();
  }
  shared_acc_ops_ = 0;
}

}  // namespace msh
