// Shared bus interconnect between off-chip memory, cores, and PEs
// (paper Fig 1). Transfers are accounted in bits x hops; latency follows
// a fixed bus width per cycle.
#pragma once

#include "common/types.h"

namespace msh {

class Bus {
 public:
  /// `width_bits`: bits moved per cycle.
  explicit Bus(i64 width_bits = 256);

  i64 width_bits() const { return width_bits_; }

  /// Records a transfer; returns the cycles it occupies the bus.
  i64 transfer(i64 bits, i64 hops = 1);

  i64 bits_moved() const { return bits_moved_; }
  i64 bit_hops() const { return bit_hops_; }
  i64 busy_cycles() const { return busy_cycles_; }

 private:
  i64 width_bits_;
  i64 bits_moved_ = 0;
  i64 bit_hops_ = 0;
  i64 busy_cycles_ = 0;
};

}  // namespace msh
