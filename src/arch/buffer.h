// Core-local activation buffer with access accounting. The buffer
// implements the row-stationary reuse policy (paper §3 / Eyeriss [21]):
// an activation row is fetched from the bus once and served to every PE
// pass that needs it, so bus traffic scales with unique rows, not reads.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace msh {

class ActivationBuffer {
 public:
  explicit ActivationBuffer(i64 capacity_bytes);

  i64 capacity_bytes() const { return capacity_bytes_; }

  /// Loads a dense INT8 activation vector; evicts the previous contents.
  /// Returns false (and loads nothing) if it does not fit.
  bool load(std::span<const i8> activations);

  std::span<const i8> contents() const { return data_; }

  /// Records a PE-side read of `bytes` from the buffer.
  void record_read(i64 bytes) { bytes_read_ += bytes; }
  void record_write(i64 bytes) { bytes_written_ += bytes; }

  i64 bytes_loaded() const { return bytes_loaded_; }   ///< bus-side fills
  i64 bytes_read() const { return bytes_read_; }       ///< PE-side reads
  i64 bytes_written() const { return bytes_written_; } ///< result deposits

  /// Reuse factor achieved by row-stationary buffering.
  f64 reuse() const {
    return bytes_loaded_ == 0 ? 0.0
                              : static_cast<f64>(bytes_read_) /
                                    static_cast<f64>(bytes_loaded_);
  }

 private:
  i64 capacity_bytes_;
  std::vector<i8> data_;
  i64 bytes_loaded_ = 0;
  i64 bytes_read_ = 0;
  i64 bytes_written_ = 0;
};

}  // namespace msh
