// SIMT-style scheduler (paper Fig 1, block 2): distributes tile work
// across the available PEs to maximize parallelism. All PEs in a wave run
// the same operation on different data; the makespan of a layer is the
// busiest PE's cycle count.
#pragma once

#include <vector>

#include "common/types.h"

namespace msh {

struct ScheduleResult {
  /// tile index -> PE index.
  std::vector<i64> assignment;
  /// Per-PE total cycles.
  std::vector<i64> pe_cycles;
  /// Busiest PE (the layer's critical path).
  i64 makespan = 0;
  /// Sum of all cycles (work volume).
  i64 total_cycles = 0;

  f64 utilization() const {
    const i64 denom = makespan * static_cast<i64>(pe_cycles.size());
    return denom == 0 ? 0.0
                      : static_cast<f64>(total_cycles) /
                            static_cast<f64>(denom);
  }
};

class Scheduler {
 public:
  explicit Scheduler(i64 pe_count);

  i64 pe_count() const { return pe_count_; }

  /// Longest-processing-time greedy assignment of tiles (given their
  /// per-tile cycle costs) onto PEs. Deterministic: ties broken by lower
  /// tile index, lower PE index.
  ScheduleResult schedule(const std::vector<i64>& tile_cycles) const;

 private:
  i64 pe_count_;
};

}  // namespace msh
