// Chip-level composition (paper Fig 1): a cluster of hybrid cores on a
// shared bus fed by off-chip memory. Layers are partitioned across cores
// by output columns; each core computes partial results for its slice and
// the shared bus carries activations in (broadcast) and results out
// (gather). This model answers the scaling question the single-core view
// cannot: how latency, bus occupancy and energy move with core count.
#pragma once

#include "arch/bus.h"
#include "arch/offchip.h"
#include "arch/scheduler.h"
#include "arch/topology.h"
#include "mapping/model_mapper.h"

namespace msh {

struct ChipEvalOptions {
  ChipConfig chip = {};
  i64 sram_pool_per_core = 16;
  i64 bus_width_bits = 256;
  f64 offchip_bandwidth_bits_per_ns = 128.0;
};

/// Per-layer chip-level cost.
struct ChipLayerCost {
  std::string layer;
  i64 compute_cycles = 0;   ///< makespan across cores
  i64 bus_cycles = 0;       ///< broadcast + gather on the shared bus
  i64 cycles() const { return compute_cycles + bus_cycles; }
};

struct ChipEvalResult {
  std::vector<ChipLayerCost> layers;
  i64 total_cycles = 0;
  i64 bus_bits_moved = 0;
  f64 compute_utilization = 0.0;  ///< busy core-cycles / (cores x makespan)

  TimeNs latency(TimeNs cycle_time = TimeNs::ns(1.0)) const {
    return static_cast<f64>(total_cycles) * cycle_time;
  }
};

/// Evaluates one inference of `model` on a chip with `cores` cores under
/// the given hybrid plan configuration. Layers run sequentially (data
/// dependence); within a layer, output columns split evenly across cores.
ChipEvalResult evaluate_chip(const ModelInventory& model,
                             const HybridPlanOptions& plan_options,
                             i64 cores, const ChipEvalOptions& options = {});

}  // namespace msh
