#include "arch/chip.h"

namespace msh {

namespace {
i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }
}  // namespace

ChipEvalResult evaluate_chip(const ModelInventory& model,
                             const HybridPlanOptions& plan_options,
                             i64 cores, const ChipEvalOptions& options) {
  MSH_REQUIRE(cores >= 1);
  const HybridPlan plan = plan_hybrid(model, plan_options);
  // Every core brings its own bank structure (4x4 banks x 4x4 sub-arrays);
  // adding cores adds arrays, so per-core array parallelism is fixed.
  const i64 mram_pes_per_core = options.chip.core.mram_pes_per_core();

  ChipEvalResult result;
  i64 busy_core_cycles = 0;
  Bus bus(options.bus_width_bits);

  for (const LayerMapping& lm : plan.layers) {
    ChipLayerCost cost;
    cost.layer = lm.layer;

    // Column-sliced partitioning: each core takes cols/cores outputs, so
    // per-core work scales down ~linearly until granularity bites.
    const f64 slice = 1.0 / static_cast<f64>(cores);
    i64 per_core_cycles = 0;
    if (lm.target == PeKind::kMram) {
      const i64 core_rows = static_cast<i64>(
          std::max(1.0, static_cast<f64>(lm.mram_row_reads) * slice));
      per_core_cycles = ceil_div(core_rows, mram_pes_per_core);
    } else {
      const i64 core_cycles = static_cast<i64>(
          std::max(1.0, static_cast<f64>(lm.sram_array_cycles) * slice));
      per_core_cycles = ceil_div(core_cycles, options.sram_pool_per_core);
    }
    cost.compute_cycles = per_core_cycles;
    busy_core_cycles += per_core_cycles * cores;

    // Bus: broadcast the layer's input activations once (row-stationary
    // buffering inside each core) and gather the INT8 outputs.
    const i64 input_bits = lm.dense_k * 8;
    const i64 output_bits = lm.cols * 8;
    cost.bus_cycles = bus.transfer(input_bits, /*hops=*/1) +
                      bus.transfer(output_bits, /*hops=*/1);

    result.total_cycles += cost.cycles();
    result.layers.push_back(std::move(cost));
  }

  result.bus_bits_moved = bus.bits_moved();
  i64 compute_makespan = 0;
  for (const auto& layer : result.layers)
    compute_makespan += layer.compute_cycles;
  // Utilization: busy core-cycles over (cores x per-core makespan). The
  // column-sliced split keeps cores symmetric, so this stays ~1 until the
  // per-layer minimum-work floor dominates.
  result.compute_utilization =
      compute_makespan == 0
          ? 0.0
          : static_cast<f64>(busy_core_cycles) /
                (static_cast<f64>(cores) *
                 static_cast<f64>(compute_makespan));
  return result;
}

}  // namespace msh
