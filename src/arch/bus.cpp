#include "arch/bus.h"

namespace msh {

Bus::Bus(i64 width_bits) : width_bits_(width_bits) {
  MSH_REQUIRE(width_bits_ > 0);
}

i64 Bus::transfer(i64 bits, i64 hops) {
  MSH_REQUIRE(bits >= 0 && hops >= 1);
  bits_moved_ += bits;
  bit_hops_ += bits * hops;
  const i64 cycles = (bits + width_bits_ - 1) / width_bits_ * hops;
  busy_cycles_ += cycles;
  return cycles;
}

}  // namespace msh
