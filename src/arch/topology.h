// Chip topology (paper §3, Fig 1 and §5.2): a cluster of cores on a bus,
// each core holding 4x4 banks of 4x4 MRAM sub-arrays (256 PEs -> 16 MB
// per core at 1024x512 bits per sub-array) plus a proportionally small
// pool of SRAM sparse PEs for the learnable path, a data buffer, control,
// and shared accumulators.
#pragma once

#include "common/types.h"
#include "device/table2.h"

namespace msh {

struct CoreConfig {
  i64 banks_x = 4;
  i64 banks_y = 4;
  i64 pes_x = 4;
  i64 pes_y = 4;

  i64 banks() const { return banks_x * banks_y; }
  i64 pes_per_bank() const { return pes_x * pes_y; }
  i64 mram_pes_per_core() const { return banks() * pes_per_bank(); }

  /// MRAM storage capacity of one core in bytes.
  i64 mram_bytes_per_core(const PeGeometry& geom) const {
    return mram_pes_per_core() * geom.mram_capacity_bits() / 8;
  }
};

struct ChipConfig {
  CoreConfig core;
  i64 cores = 1;
  PeGeometry geometry = {};

  i64 total_mram_pes() const { return cores * core.mram_pes_per_core(); }
  i64 total_mram_bytes() const {
    return cores * core.mram_bytes_per_core(geometry);
  }

  /// Cores needed to hold `bytes` of (frozen) weight storage.
  static i64 cores_for_capacity(i64 bytes, const CoreConfig& core,
                                const PeGeometry& geom) {
    const i64 per_core = core.mram_bytes_per_core(geom);
    return (bytes + per_core - 1) / per_core;
  }
};

}  // namespace msh
