// Dense linear-algebra and convolution-lowering primitives. These are the
// golden reference implementations the PIM functional simulators are
// verified against.
#pragma once

#include "tensor/tensor.h"

namespace msh {

/// C[MxN] = A[MxK] * B[KxN].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[MxN] = A^T[MxK] * B[KxN] where A is stored [KxM].
Tensor matmul_ta(const Tensor& a, const Tensor& b);
/// C[MxN] = A[MxK] * B^T[KxN] where B is stored [NxK].
Tensor matmul_tb(const Tensor& a, const Tensor& b);

/// Elementwise sum / difference / Hadamard product.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, f32 s);

struct Conv2dGeometry {
  i64 in_channels = 0;
  i64 out_channels = 0;
  i64 kernel = 1;
  i64 stride = 1;
  i64 padding = 0;

  i64 out_dim(i64 in_dim) const {
    return (in_dim + 2 * padding - kernel) / stride + 1;
  }
};

/// Lowers an input activation [N, C, H, W] to the im2col matrix
/// [C*k*k, N*Hout*Wout] so conv becomes a matmul with the
/// [out_channels, C*k*k] weight matrix.
Tensor im2col(const Tensor& input, const Conv2dGeometry& geom);

/// Adjoint of im2col: scatters gradient columns back to [N, C, H, W].
Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const Conv2dGeometry& geom);

}  // namespace msh
