#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace msh {

Tensor::Tensor(Shape shape, f32 fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.numel()), fill) {}

Tensor Tensor::from_data(Shape shape, std::vector<f32> data) {
  MSH_REQUIRE(shape.numel() == static_cast<i64>(data.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, f32 lo, f32 hi) {
  Tensor t(std::move(shape));
  for (f32& v : t.data_) v = static_cast<f32>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, f32 mean, f32 stddev) {
  Tensor t(std::move(shape));
  for (f32& v : t.data_) v = static_cast<f32>(rng.gaussian(mean, stddev));
  return t;
}

f32& Tensor::at(std::initializer_list<i64> index) {
  return data_[static_cast<size_t>(
      shape_.offset(std::vector<i64>(index)))];
}

f32 Tensor::at(std::initializer_list<i64> index) const {
  return data_[static_cast<size_t>(
      shape_.offset(std::vector<i64>(index)))];
}

f32& Tensor::operator[](i64 flat) {
  MSH_REQUIRE(flat >= 0 && flat < numel());
  return data_[static_cast<size_t>(flat)];
}

f32 Tensor::operator[](i64 flat) const {
  MSH_REQUIRE(flat >= 0 && flat < numel());
  return data_[static_cast<size_t>(flat)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  MSH_REQUIRE(new_shape.numel() == numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor Tensor::transposed() const {
  MSH_REQUIRE(shape_.rank() == 2);
  const i64 rows = shape_[0], cols = shape_[1];
  Tensor out(Shape{cols, rows});
  for (i64 r = 0; r < rows; ++r)
    for (i64 c = 0; c < cols; ++c)
      out.data_[static_cast<size_t>(c * rows + r)] =
          data_[static_cast<size_t>(r * cols + c)];
  return out;
}

void Tensor::fill(f32 value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& o) {
  MSH_REQUIRE(shape_ == o.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  MSH_REQUIRE(shape_ == o.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(f32 s) {
  for (f32& v : data_) v *= s;
  return *this;
}

f32 Tensor::min() const {
  MSH_REQUIRE(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

f32 Tensor::max() const {
  MSH_REQUIRE(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

f32 Tensor::abs_max() const {
  f32 m = 0.0f;
  for (f32 v : data_) m = std::max(m, std::fabs(v));
  return m;
}

f64 Tensor::sum() const {
  f64 s = 0.0;
  for (f32 v : data_) s += v;
  return s;
}

f64 Tensor::mean() const {
  MSH_REQUIRE(!data_.empty());
  return sum() / static_cast<f64>(data_.size());
}

f64 Tensor::sq_norm() const {
  f64 s = 0.0;
  for (f32 v : data_) s += static_cast<f64>(v) * v;
  return s;
}

f32 max_abs_diff(const Tensor& a, const Tensor& b) {
  MSH_REQUIRE(a.shape() == b.shape());
  f32 m = 0.0f;
  for (i64 i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, f32 rtol, f32 atol) {
  if (a.shape() != b.shape()) return false;
  for (i64 i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace msh
