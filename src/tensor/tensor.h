// Dense float tensor with row-major storage. This is the numeric substrate
// for the algorithm stack (training, pruning, quantization); the hardware
// simulators consume its buffers through spans.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace msh {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, f32 fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, f32 value) {
    return Tensor(std::move(shape), value);
  }
  static Tensor from_data(Shape shape, std::vector<f32> data);
  /// I.i.d. uniform in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, f32 lo = 0.0f, f32 hi = 1.0f);
  /// I.i.d. normal(mean, stddev).
  static Tensor randn(Shape shape, Rng& rng, f32 mean = 0.0f,
                      f32 stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  i64 numel() const { return static_cast<i64>(data_.size()); }
  bool empty() const { return data_.empty(); }

  f32* data() { return data_.data(); }
  const f32* data() const { return data_.data(); }
  std::span<f32> span() { return data_; }
  std::span<const f32> span() const { return data_; }

  f32& at(std::initializer_list<i64> index);
  f32 at(std::initializer_list<i64> index) const;
  f32& operator[](i64 flat);
  f32 operator[](i64 flat) const;

  /// Reinterprets as a new shape with the same element count.
  Tensor reshaped(Shape new_shape) const;
  /// Matrix transpose; requires rank 2.
  Tensor transposed() const;

  void fill(f32 value);
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(f32 s);

  f32 min() const;
  f32 max() const;
  f32 abs_max() const;
  f64 sum() const;
  f64 mean() const;
  /// Squared L2 norm.
  f64 sq_norm() const;

 private:
  Shape shape_;
  std::vector<f32> data_;
};

/// Max elementwise |a - b|; shapes must match.
f32 max_abs_diff(const Tensor& a, const Tensor& b);
/// True if all elements within atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, f32 rtol = 1e-5f,
              f32 atol = 1e-6f);

}  // namespace msh
