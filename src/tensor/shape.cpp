#include "tensor/shape.h"

namespace msh {

void Shape::validate() const {
  for (i64 d : dims_) MSH_REQUIRE(d >= 0);
}

i64 Shape::dim(i64 i) const {
  MSH_REQUIRE(i >= 0 && i < rank());
  return dims_[static_cast<size_t>(i)];
}

i64 Shape::numel() const {
  i64 n = 1;
  for (i64 d : dims_) n *= d;
  return n;
}

i64 Shape::offset(const std::vector<i64>& index) const {
  MSH_REQUIRE(static_cast<i64>(index.size()) == rank());
  i64 off = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    MSH_REQUIRE(index[i] >= 0 && index[i] < dims_[i]);
    off = off * dims_[i] + index[i];
  }
  return off;
}

std::string Shape::to_string() const {
  std::string s = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(dims_[i]);
  }
  return s + "]";
}

}  // namespace msh
