#include "tensor/ops.h"

namespace msh {

Tensor matmul(const Tensor& a, const Tensor& b) {
  MSH_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2);
  const i64 m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  MSH_REQUIRE(b.shape()[0] == k);
  Tensor c(Shape{m, n});
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* pc = c.data();
  for (i64 i = 0; i < m; ++i) {
    for (i64 kk = 0; kk < k; ++kk) {
      const f32 av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const f32* brow = pb + kk * n;
      f32* crow = pc + i * n;
      for (i64 j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_ta(const Tensor& a, const Tensor& b) {
  MSH_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2);
  const i64 k = a.shape()[0], m = a.shape()[1], n = b.shape()[1];
  MSH_REQUIRE(b.shape()[0] == k);
  Tensor c(Shape{m, n});
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* pc = c.data();
  for (i64 kk = 0; kk < k; ++kk) {
    const f32* arow = pa + kk * m;
    const f32* brow = pb + kk * n;
    for (i64 i = 0; i < m; ++i) {
      const f32 av = arow[i];
      if (av == 0.0f) continue;
      f32* crow = pc + i * n;
      for (i64 j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tb(const Tensor& a, const Tensor& b) {
  MSH_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2);
  const i64 m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  MSH_REQUIRE(b.shape()[1] == k);
  Tensor c(Shape{m, n});
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* pc = c.data();
  for (i64 i = 0; i < m; ++i) {
    const f32* arow = pa + i * k;
    for (i64 j = 0; j < n; ++j) {
      const f32* brow = pb + j * k;
      f64 acc = 0.0;
      for (i64 kk = 0; kk < k; ++kk) acc += f64{arow[kk]} * brow[kk];
      pc[i * n + j] = static_cast<f32>(acc);
    }
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c += b;
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c -= b;
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  MSH_REQUIRE(a.shape() == b.shape());
  Tensor c = a;
  for (i64 i = 0; i < c.numel(); ++i) c[i] *= b[i];
  return c;
}

Tensor scale(const Tensor& a, f32 s) {
  Tensor c = a;
  c *= s;
  return c;
}

Tensor im2col(const Tensor& input, const Conv2dGeometry& geom) {
  MSH_REQUIRE(input.shape().rank() == 4);
  const i64 n = input.shape()[0], c = input.shape()[1],
            h = input.shape()[2], w = input.shape()[3];
  MSH_REQUIRE(c == geom.in_channels);
  const i64 ho = geom.out_dim(h), wo = geom.out_dim(w);
  MSH_REQUIRE(ho > 0 && wo > 0);
  const i64 kk = geom.kernel;
  Tensor cols(Shape{c * kk * kk, n * ho * wo});
  f32* pc = cols.data();
  const f32* pi = input.data();
  const i64 col_count = n * ho * wo;
  for (i64 ch = 0; ch < c; ++ch) {
    for (i64 ky = 0; ky < kk; ++ky) {
      for (i64 kx = 0; kx < kk; ++kx) {
        const i64 row = (ch * kk + ky) * kk + kx;
        f32* dst = pc + row * col_count;
        for (i64 img = 0; img < n; ++img) {
          const f32* src = pi + (img * c + ch) * h * w;
          for (i64 oy = 0; oy < ho; ++oy) {
            const i64 iy = oy * geom.stride - geom.padding + ky;
            for (i64 ox = 0; ox < wo; ++ox) {
              const i64 ix = ox * geom.stride - geom.padding + kx;
              const i64 col = (img * ho + oy) * wo + ox;
              dst[col] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                             ? src[iy * w + ix]
                             : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape,
              const Conv2dGeometry& geom) {
  MSH_REQUIRE(input_shape.rank() == 4);
  const i64 n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const i64 ho = geom.out_dim(h), wo = geom.out_dim(w);
  const i64 kk = geom.kernel;
  MSH_REQUIRE(cols.shape() == Shape({c * kk * kk, n * ho * wo}));
  Tensor out(input_shape);
  f32* po = out.data();
  const f32* pc = cols.data();
  const i64 col_count = n * ho * wo;
  for (i64 ch = 0; ch < c; ++ch) {
    for (i64 ky = 0; ky < kk; ++ky) {
      for (i64 kx = 0; kx < kk; ++kx) {
        const i64 row = (ch * kk + ky) * kk + kx;
        const f32* src = pc + row * col_count;
        for (i64 img = 0; img < n; ++img) {
          f32* dst = po + (img * c + ch) * h * w;
          for (i64 oy = 0; oy < ho; ++oy) {
            const i64 iy = oy * geom.stride - geom.padding + ky;
            if (iy < 0 || iy >= h) continue;
            for (i64 ox = 0; ox < wo; ++ox) {
              const i64 ix = ox * geom.stride - geom.padding + kx;
              if (ix < 0 || ix >= w) continue;
              dst[iy * w + ix] += src[(img * ho + oy) * wo + ox];
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace msh
