// Tensor shape: an ordered list of dimension extents with row-major
// (C-order) linearization. Kept small and value-semantic.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.h"

namespace msh {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<i64> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<i64> dims) : dims_(std::move(dims)) {
    validate();
  }

  i64 rank() const { return static_cast<i64>(dims_.size()); }
  i64 dim(i64 i) const;
  i64 operator[](i64 i) const { return dim(i); }
  const std::vector<i64>& dims() const { return dims_; }

  /// Total element count (1 for a rank-0 shape).
  i64 numel() const;

  /// Row-major linear offset of a multi-index.
  i64 offset(const std::vector<i64>& index) const;

  bool operator==(const Shape& o) const = default;

  std::string to_string() const;

 private:
  void validate() const;
  std::vector<i64> dims_;
};

}  // namespace msh
