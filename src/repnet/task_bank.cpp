#include "repnet/task_bank.h"

#include <cmath>

namespace msh {

TaskBank::TaskBank(RepNetModel& model) : model_(model) {}

void TaskBank::save_task(const std::string& name) {
  MSH_REQUIRE(!name.empty());
  TaskState state;
  for (i64 m = 0; m < model_.num_rep_modules(); ++m) {
    for (Param* p : model_.rep_module(m).params())
      state.rep_values.push_back(p->value);
  }
  Linear& classifier = model_.classifier();
  state.classifier_classes = classifier.out_features();
  state.classifier_weight = classifier.weight().value;
  state.classifier_bias = classifier.bias().value;
  tasks_[name] = std::move(state);
}

void TaskBank::activate_task(const std::string& name, Rng& rng) {
  const auto it = tasks_.find(name);
  if (it == tasks_.end())
    throw ContractError("TaskBank: unknown task '" + name + "'");
  const TaskState& state = it->second;

  // Fresh head of the right arity, then overwrite with the saved values.
  model_.start_new_task(state.classifier_classes, rng);
  size_t idx = 0;
  for (i64 m = 0; m < model_.num_rep_modules(); ++m) {
    for (Param* p : model_.rep_module(m).params()) {
      MSH_ENSURE(idx < state.rep_values.size());
      MSH_REQUIRE(p->value.shape() == state.rep_values[idx].shape());
      p->value = state.rep_values[idx];
      p->zero_grad();
      p->mask = nullptr;  // owner may be gone; zeros are already baked in
      ++idx;
    }
  }
  Linear& classifier = model_.classifier();
  classifier.set_weight(state.classifier_weight);
  classifier.bias().value = state.classifier_bias;
}

bool TaskBank::has_task(const std::string& name) const {
  return tasks_.count(name) > 0;
}

std::vector<std::string> TaskBank::task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (const auto& [name, state] : tasks_) names.push_back(name);
  return names;
}

i64 TaskBank::task_param_count(const std::string& name) const {
  const auto it = tasks_.find(name);
  MSH_REQUIRE(it != tasks_.end());
  i64 count = it->second.classifier_weight.numel() +
              it->second.classifier_bias.numel();
  for (const Tensor& t : it->second.rep_values) count += t.numel();
  return count;
}

i64 TaskBank::total_param_count() const {
  i64 count = 0;
  for (const auto& [name, state] : tasks_) count += task_param_count(name);
  return count;
}

i64 TaskBank::storage_bytes(i32 value_bits, NmConfig nm) const {
  MSH_REQUIRE(value_bits > 0 && nm.valid());
  i64 bits = 0;
  for (const auto& [name, state] : tasks_) {
    for (const Tensor& t : state.rep_values) {
      if (t.shape().rank() == 2 && t.shape()[1] % nm.m == 0) {
        // N:M-compressible conv matrix: count actual non-zeros at the
        // value+index cost (a task fine-tuned dense stores densely).
        i64 nonzeros = 0;
        for (i64 i = 0; i < t.numel(); ++i) nonzeros += t[i] != 0.0f;
        const f64 density =
            static_cast<f64>(nonzeros) / static_cast<f64>(t.numel());
        if (density <= nm.density() + 1e-9) {
          bits += nonzeros * (value_bits + nm.index_bits());
          continue;
        }
      }
      bits += t.numel() * value_bits;
    }
    bits += (state.classifier_weight.numel() +
             state.classifier_bias.numel()) *
            value_bits;
  }
  return (bits + 7) / 8;
}

}  // namespace msh
