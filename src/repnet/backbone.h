// MicroResNet backbone — the trainable stand-in for the paper's
// ImageNet-pretrained ResNet-50 "fixed main branch". Exposes per-stage
// forward/backward so the Rep-Net activation connectors can tap the
// intermediate feature maps (paper Fig 6).
#pragma once

#include "nn/residual.h"
#include "nn/sequential.h"
#include "workloads/model_zoo.h"

namespace msh {

class Backbone {
 public:
  Backbone(const BackboneConfig& cfg, Rng& rng);

  const BackboneConfig& config() const { return cfg_; }
  i64 num_stages() const { return cfg_.num_stages(); }

  Tensor forward_stem(const Tensor& x, bool training);
  Tensor forward_stage(i64 stage, const Tensor& x, bool training);
  Tensor backward_stage(i64 stage, const Tensor& grad);
  Tensor backward_stem(const Tensor& grad);

  std::vector<Param*> params();
  /// Freezes/unfreezes all backbone parameters AND BatchNorm running
  /// statistics. Frozen parameters still propagate error (eq. 1) but
  /// receive no updates — the paper's non-volatile MRAM-resident weights.
  /// Freezing the BN statistics too is what makes task switching exactly
  /// reproducible (see repnet/task_bank.h).
  void set_trainable(bool trainable);
  /// Freezes only the BN running statistics (used by recalibration).
  void set_batchnorm_frozen(bool frozen);
  bool batchnorm_frozen() const;

  /// Structural access for hardware deployment: the stem container and
  /// each stage's residual blocks.
  Sequential& stem() { return stem_; }
  Sequential& stage(i64 i);
  i64 blocks_in_stage(i64 stage) const;

  /// Every BatchNorm2d in the backbone, in deterministic structural order
  /// (stem, then stages block by block). Used to mirror running
  /// statistics into a second model instance (RepNetModel::
  /// copy_state_from) — running stats are buffers, not params, so the
  /// param walk alone cannot carry them.
  std::vector<BatchNorm2d*> batchnorm_layers();

  /// Channels produced by a given stage.
  i64 stage_out_channels(i64 stage) const;
  i64 stage_stride(i64 stage) const;
  /// Channels entering a given stage (stem output for stage 0).
  i64 stage_in_channels(i64 stage) const;

 private:
  BackboneConfig cfg_;
  Sequential stem_;
  std::vector<std::unique_ptr<Sequential>> stages_;
};

}  // namespace msh
