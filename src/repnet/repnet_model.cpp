#include "repnet/repnet_model.h"

namespace msh {

RepNetModel::RepNetModel(const BackboneConfig& backbone_cfg,
                         const RepNetConfig& rep_cfg, i64 num_classes,
                         Rng& rng)
    : backbone_(backbone_cfg, rng),
      gap_("gap"),
      flatten_("flatten"),
      classifier_rng_(rng.fork()) {
  for (i64 s = 0; s < backbone_.num_stages(); ++s) {
    const i64 in_ch = backbone_.stage_in_channels(s);
    const i64 out_ch = backbone_.stage_out_channels(s);
    reps_.push_back(std::make_unique<RepModule>(
        in_ch, out_ch, rep_cfg.bottleneck_for(out_ch),
        backbone_.stage_stride(s), rng, "rep" + std::to_string(s)));
  }
  classifier_ = std::make_unique<Linear>(
      backbone_cfg.feature_channels(), num_classes, classifier_rng_,
      /*bias=*/true, "classifier");
}

RepModule& RepNetModel::rep_module(i64 i) {
  MSH_REQUIRE(i >= 0 && i < num_rep_modules());
  return *reps_[static_cast<size_t>(i)];
}

Tensor RepNetModel::forward_features(const Tensor& x, bool training) {
  Tensor a = backbone_.forward_stem(x, training);
  Tensor r;  // empty means "no rep contribution yet"
  for (i64 s = 0; s < backbone_.num_stages(); ++s) {
    Tensor u = a;
    if (!r.empty()) u += r;  // activation connector (element-wise)
    a = backbone_.forward_stage(s, u, training);
    r = reps_[static_cast<size_t>(s)]->forward(u, training);
  }
  Tensor merged = a;
  merged += r;
  return flatten_.forward(gap_.forward(merged, training), training);
}

Tensor RepNetModel::forward(const Tensor& x, bool training) {
  return classifier_->forward(forward_features(x, training), training);
}

void RepNetModel::backward_features(const Tensor& grad_features) {
  Tensor g_merged = gap_.backward(flatten_.backward(grad_features));

  // a_S + r_S both receive g_merged.
  Tensor g_a = g_merged;
  Tensor g_r = std::move(g_merged);
  for (i64 s = backbone_.num_stages() - 1; s >= 0; --s) {
    Tensor g_u = backbone_.backward_stage(s, g_a);
    g_u += reps_[static_cast<size_t>(s)]->backward(g_r);
    // u_s = a_{s-1} + r_{s-1}: the same gradient reaches both summands.
    g_a = g_u;
    g_r = std::move(g_u);
  }
  backbone_.backward_stem(g_a);
}

void RepNetModel::backward(const Tensor& grad_logits) {
  backward_features(classifier_->backward(grad_logits));
}

std::vector<Param*> RepNetModel::learnable_params() {
  std::vector<Param*> all;
  for (auto& rep : reps_) {
    for (Param* p : rep->params()) all.push_back(p);
  }
  for (Param* p : classifier_->params()) all.push_back(p);
  return all;
}

std::vector<Param*> RepNetModel::rep_params() {
  std::vector<Param*> all;
  for (auto& rep : reps_) {
    for (Param* p : rep->params()) all.push_back(p);
  }
  return all;
}

std::vector<Param*> RepNetModel::rep_conv_params() {
  std::vector<Param*> all;
  for (auto& rep : reps_) {
    for (Param* p : rep->params()) {
      // Conv weight matrices only (rank 2 [out, K]); biases stay dense.
      if (p->value.shape().rank() == 2) all.push_back(p);
    }
  }
  return all;
}

void RepNetModel::copy_state_from(RepNetModel& other) {
  const auto copy = [](std::vector<Param*> dst, std::vector<Param*> src) {
    MSH_REQUIRE(dst.size() == src.size());
    for (size_t i = 0; i < dst.size(); ++i) {
      MSH_REQUIRE(dst[i]->value.shape() == src[i]->value.shape());
      dst[i]->value = src[i]->value;
      dst[i]->zero_grad();
    }
  };
  copy(backbone_params(), other.backbone_params());
  copy(learnable_params(), other.learnable_params());
  auto dst_bn = backbone_.batchnorm_layers();
  auto src_bn = other.backbone().batchnorm_layers();
  MSH_REQUIRE(dst_bn.size() == src_bn.size());
  for (size_t i = 0; i < dst_bn.size(); ++i) {
    dst_bn[i]->set_running_stats(src_bn[i]->running_mean(),
                                 src_bn[i]->running_var());
    dst_bn[i]->set_frozen_stats(src_bn[i]->frozen_stats());
  }
}

void RepNetModel::start_new_task(i64 num_classes, Rng& rng) {
  classifier_ = std::make_unique<Linear>(feature_dim(), num_classes, rng,
                                         /*bias=*/true, "classifier");
}

}  // namespace msh
