// Training loops: backbone pretraining (the ImageNet stand-in phase) and
// on-device continual learning of the Rep-Net path + classifier with
// optional N:M sparsification (paper §5.1 procedure: one-epoch gradient
// calibration -> mask selection -> fine-tuning with the mask pinned).
#pragma once

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "quant/quant.h"
#include "repnet/repnet_model.h"
#include "repnet/sparsify.h"
#include "workloads/dataset.h"

namespace msh {

struct TrainOptions {
  i32 epochs = 10;
  i64 batch = 32;
  f32 lr = 0.05f;
  f32 momentum = 0.9f;
  f32 weight_decay = 5e-4f;
  f32 lr_decay = 0.93f;  ///< multiplicative per-epoch decay
};

/// Backbone + plain classification head, used for pretraining and for
/// evaluating the backbone alone ("backbone@imagenet" column of Table 1).
class BackboneClassifier {
 public:
  BackboneClassifier(Backbone& backbone, i64 num_classes, Rng& rng);

  Tensor forward(const Tensor& x, bool training);
  void backward(const Tensor& grad_logits);
  std::vector<Param*> params();
  Linear& head() { return head_; }
  Backbone& backbone() { return backbone_; }

 private:
  Backbone& backbone_;
  GlobalAvgPool gap_;
  Flatten flatten_;
  Linear head_;
};

/// Trains the backbone classifier; returns final test accuracy.
f64 pretrain_backbone(BackboneClassifier& model, const TrainTestSplit& data,
                      const TrainOptions& options, Rng& rng);

/// Test-set accuracy of a backbone classifier.
f64 evaluate_backbone(BackboneClassifier& model, const Dataset& test,
                      i64 batch = 64);

/// Test-set accuracy of a full Rep-Net model.
f64 evaluate_repnet(RepNetModel& model, const Dataset& test, i64 batch = 64);

/// RAII weight fake-quantization: on construction replaces every param
/// value with its INT-b quantize-dequantize image (the paper's PTQ), on
/// destruction restores the FP32 values.
class ScopedFakeQuant {
 public:
  ScopedFakeQuant(std::vector<Param*> params, i32 bits);
  ~ScopedFakeQuant();
  ScopedFakeQuant(const ScopedFakeQuant&) = delete;
  ScopedFakeQuant& operator=(const ScopedFakeQuant&) = delete;

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> saved_;
};

struct ContinualOptions {
  TrainOptions finetune{.epochs = 12, .batch = 32, .lr = 0.04f};
  bool sparse = false;
  NmConfig nm = kSparse1of4;
  /// Use the paper's gradient-informed saliency (one-epoch calibration)
  /// for mask selection; false selects by weight magnitude alone.
  bool gradient_saliency = true;
};

struct TaskOutcome {
  std::string task;
  f64 accuracy_fp32 = 0.0;
  f64 accuracy_int8 = 0.0;
  f64 rep_kept_fraction = 1.0;  ///< fraction of Rep-path weights kept
  i64 weights_updated = 0;      ///< optimizer write volume (for Fig 8)
  /// Owns the N:M masks the model's params reference after sparse
  /// learning; keep this alive as long as the model is used.
  SparsityPlan sparsity;
};

/// Recalibrates BatchNorm running statistics by running forward passes in
/// training mode with no weight updates — the standard post-training step
/// after one-shot pruning/quantization, without which the pruned
/// backbone's stale statistics destroy its accuracy.
void recalibrate_batchnorm(BackboneClassifier& model, const Dataset& data,
                           i64 batches, i64 batch_size, Rng& rng);

/// Value snapshot of a parameter set (used to restore the pretrained
/// backbone between sparsity configurations in the Table 1 harness).
std::vector<Tensor> snapshot_params(const std::vector<Param*>& params);
void restore_params(const std::vector<Param*>& params,
                    const std::vector<Tensor>& snapshot);

/// Runs the full on-device learning recipe for one downstream task:
/// fresh classifier, optional saliency pass + N:M pruning of the Rep
/// path, fine-tuning of Rep path + classifier (backbone frozen), and
/// FP32 + INT8-PTQ evaluation.
TaskOutcome learn_task(RepNetModel& model, const TrainTestSplit& data,
                       const ContinualOptions& options, Rng& rng);

}  // namespace msh
