#include "repnet/sparsify.h"

namespace msh {

i64 SparsityPlan::prune(std::vector<Param*> params, NmConfig cfg,
                        bool use_gradient_saliency) {
  MSH_REQUIRE(cfg.valid());
  cfg_ = cfg;
  i64 pruned = 0;
  for (Param* p : params) {
    MSH_REQUIRE(p != nullptr);
    if (p->value.shape().rank() != 2) continue;
    const i64 k = p->value.shape()[1];
    if (k % cfg.m != 0) continue;  // incompatible reduction dim: stay dense

    const Tensor saliency =
        use_gradient_saliency ? saliency_scores(p->value, p->grad)
                              : saliency_scores(p->value, Tensor{});
    auto mask = std::make_unique<NmMask>(
        select_nm_mask(saliency, cfg, GroupAxis::kCols));
    apply_mask(p->value, *mask);
    total_elements_ += p->value.numel();
    kept_elements_ += mask->count_kept();
    p->mask = mask.get();
    masks_.push_back(std::move(mask));
    ++pruned;
  }
  return pruned;
}

f64 SparsityPlan::kept_fraction() const {
  return total_elements_ == 0 ? 1.0
                              : static_cast<f64>(kept_elements_) /
                                    static_cast<f64>(total_elements_);
}

}  // namespace msh
