// Full Rep-Net continual-learning model (paper §4, Fig 6): a fixed
// backbone main branch, a parallel tiny Rep-Net path of learnable modules,
// activation connectors exchanging intermediate feature maps between the
// two, and a shared per-task classifier.
//
// Dataflow per forward pass (S = number of stages):
//   a_0 = stem(x)
//   u_i = a_{i-1} + r_{i-1}           (activation connector; r_{-1} = 0)
//   a_i = stage_i(u_i)                (frozen backbone)
//   r_i = rep_i(u_i)                  (learnable Rep module)
//   logits = classifier(GAP(a_S + r_S))
// Backward mirrors this exactly; gradients flow *through* the frozen
// backbone (error propagation, eq. 1) but only Rep modules and the
// classifier accumulate parameter gradients.
#pragma once

#include "nn/linear.h"
#include "nn/pooling.h"
#include "repnet/backbone.h"
#include "repnet/rep_module.h"

namespace msh {

class RepNetModel {
 public:
  RepNetModel(const BackboneConfig& backbone_cfg, const RepNetConfig& rep_cfg,
              i64 num_classes, Rng& rng);

  /// Computes logits; caches state for backward when training.
  Tensor forward(const Tensor& x, bool training);
  /// Backpropagates from the logits gradient through both paths.
  void backward(const Tensor& grad_logits);

  /// Forward up to the pooled feature vector [B, feature_dim()] —
  /// everything except the classifier. Caches state for
  /// backward_features when training. forward() == classifier applied to
  /// forward_features().
  Tensor forward_features(const Tensor& x, bool training);
  /// Backpropagates from a feature-vector gradient [B, feature_dim()]
  /// through the Rep path and the (frozen) backbone — the software half
  /// of hardware-in-the-loop training, where the classifier head lives
  /// on SRAM PEs and hands its propagated error (eq. 1) back here.
  void backward_features(const Tensor& grad_features);

  Backbone& backbone() { return backbone_; }
  const Backbone& backbone_const() const { return backbone_; }
  i64 num_rep_modules() const { return static_cast<i64>(reps_.size()); }
  RepModule& rep_module(i64 i);
  Linear& classifier() { return *classifier_; }

  /// Parameters of the frozen main branch.
  std::vector<Param*> backbone_params() { return backbone_.params(); }
  /// Parameters updated during on-device learning: Rep path + classifier.
  std::vector<Param*> learnable_params();
  /// Rep-path parameters only (no classifier) — what the software side of
  /// hardware-in-the-loop training updates while the head trains in-PIM.
  std::vector<Param*> rep_params();
  /// Rep-path conv parameters only (the N:M-sparsified set).
  std::vector<Param*> rep_conv_params();

  /// Swaps in a freshly initialized classifier head for a new task.
  void start_new_task(i64 num_classes, Rng& rng);

  /// Copies every parameter value and BatchNorm running statistic from
  /// `other`, which must have the identical architecture (same configs
  /// and class count). Used to stand up a dedicated trainer model that
  /// mirrors a serving model bit-exactly without retraining.
  void copy_state_from(RepNetModel& other);

  i64 feature_dim() const { return backbone_.config().feature_channels(); }

 private:
  Backbone backbone_;
  std::vector<std::unique_ptr<RepModule>> reps_;
  GlobalAvgPool gap_;
  Flatten flatten_;
  std::unique_ptr<Linear> classifier_;
  Rng classifier_rng_;
};

}  // namespace msh
