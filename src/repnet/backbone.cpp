#include "repnet/backbone.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"

namespace msh {

Backbone::Backbone(const BackboneConfig& cfg, Rng& rng)
    : cfg_(cfg), stem_("stem") {
  MSH_REQUIRE(cfg_.num_stages() > 0);
  MSH_REQUIRE(cfg_.stage_channels.size() == cfg_.blocks_per_stage.size());
  MSH_REQUIRE(cfg_.stage_channels.size() == cfg_.stage_strides.size());

  stem_.emplace<Conv2d>(
      Conv2dGeometry{.in_channels = cfg_.in_channels,
                     .out_channels = cfg_.stem_channels,
                     .kernel = 3,
                     .stride = 1,
                     .padding = 1},
      rng, /*bias=*/false, "stem.conv");
  stem_.emplace<BatchNorm2d>(cfg_.stem_channels, 0.1f, 1e-5f, "stem.bn");
  stem_.emplace<Relu>("stem.relu");

  i64 in_ch = cfg_.stem_channels;
  for (i64 s = 0; s < cfg_.num_stages(); ++s) {
    auto stage = std::make_unique<Sequential>("stage" + std::to_string(s));
    const i64 out_ch = cfg_.stage_channels[static_cast<size_t>(s)];
    const i64 blocks = cfg_.blocks_per_stage[static_cast<size_t>(s)];
    const i64 stride = cfg_.stage_strides[static_cast<size_t>(s)];
    for (i64 b = 0; b < blocks; ++b) {
      stage->emplace<ResidualBlock>(
          b == 0 ? in_ch : out_ch, out_ch, b == 0 ? stride : 1, rng,
          "stage" + std::to_string(s) + ".block" + std::to_string(b));
    }
    in_ch = out_ch;
    stages_.push_back(std::move(stage));
  }
}

Sequential& Backbone::stage(i64 i) {
  MSH_REQUIRE(i >= 0 && i < num_stages());
  return *stages_[static_cast<size_t>(i)];
}

i64 Backbone::blocks_in_stage(i64 stage) const {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return cfg_.blocks_per_stage[static_cast<size_t>(stage)];
}

Tensor Backbone::forward_stem(const Tensor& x, bool training) {
  return stem_.forward(x, training);
}

Tensor Backbone::forward_stage(i64 stage, const Tensor& x, bool training) {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return stages_[static_cast<size_t>(stage)]->forward(x, training);
}

Tensor Backbone::backward_stage(i64 stage, const Tensor& grad) {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return stages_[static_cast<size_t>(stage)]->backward(grad);
}

Tensor Backbone::backward_stem(const Tensor& grad) {
  return stem_.backward(grad);
}

std::vector<Param*> Backbone::params() {
  std::vector<Param*> all = stem_.params();
  for (auto& stage : stages_) {
    for (Param* p : stage->params()) all.push_back(p);
  }
  return all;
}

void Backbone::set_trainable(bool trainable) {
  for (Param* p : params()) p->trainable = trainable;
  set_batchnorm_frozen(!trainable);
}

std::vector<BatchNorm2d*> Backbone::batchnorm_layers() {
  std::vector<BatchNorm2d*> all;
  for (i64 i = 0; i < stem_.size(); ++i) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&stem_.layer(i)))
      all.push_back(bn);
  }
  for (auto& stage : stages_) {
    for (i64 b = 0; b < stage->size(); ++b) {
      auto* block = dynamic_cast<ResidualBlock*>(&stage->layer(b));
      MSH_ENSURE(block != nullptr);
      all.push_back(&block->bn1());
      all.push_back(&block->bn2());
      if (block->has_projection()) all.push_back(&block->projection_bn());
    }
  }
  return all;
}

void Backbone::set_batchnorm_frozen(bool frozen) {
  for (BatchNorm2d* bn : batchnorm_layers()) bn->set_frozen_stats(frozen);
}

bool Backbone::batchnorm_frozen() const {
  for (i64 i = 0; i < stem_.size(); ++i) {
    auto& stem = const_cast<Sequential&>(stem_);
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&stem.layer(i)))
      return bn->frozen_stats();
  }
  return false;
}

i64 Backbone::stage_out_channels(i64 stage) const {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return cfg_.stage_channels[static_cast<size_t>(stage)];
}

i64 Backbone::stage_stride(i64 stage) const {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return cfg_.stage_strides[static_cast<size_t>(stage)];
}

i64 Backbone::stage_in_channels(i64 stage) const {
  MSH_REQUIRE(stage >= 0 && stage < num_stages());
  return stage == 0 ? cfg_.stem_channels
                    : cfg_.stage_channels[static_cast<size_t>(stage - 1)];
}

}  // namespace msh
