#include "repnet/trainer.h"

#include <algorithm>

namespace msh {

BackboneClassifier::BackboneClassifier(Backbone& backbone, i64 num_classes,
                                       Rng& rng)
    : backbone_(backbone),
      gap_("gap"),
      flatten_("flatten"),
      head_(backbone.config().feature_channels(), num_classes, rng,
            /*bias=*/true, "base_head") {}

Tensor BackboneClassifier::forward(const Tensor& x, bool training) {
  Tensor a = backbone_.forward_stem(x, training);
  for (i64 s = 0; s < backbone_.num_stages(); ++s)
    a = backbone_.forward_stage(s, a, training);
  Tensor f = flatten_.forward(gap_.forward(a, training), training);
  return head_.forward(f, training);
}

void BackboneClassifier::backward(const Tensor& grad_logits) {
  Tensor g = gap_.backward(flatten_.backward(head_.backward(grad_logits)));
  for (i64 s = backbone_.num_stages() - 1; s >= 0; --s)
    g = backbone_.backward_stage(s, g);
  backbone_.backward_stem(g);
}

std::vector<Param*> BackboneClassifier::params() {
  std::vector<Param*> all = backbone_.params();
  for (Param* p : head_.params()) all.push_back(p);
  return all;
}

namespace {

/// One epoch of SGD over a shuffled dataset; returns mean loss.
template <typename ForwardBackward>
f64 run_epoch(Dataset& train, i64 batch, ForwardBackward&& step, Rng& rng) {
  train.shuffle(rng);
  f64 total_loss = 0.0;
  i64 batches = 0;
  for (i64 begin = 0; begin + batch <= train.size(); begin += batch) {
    const Tensor x = train.batch_images(begin, batch);
    const auto y = train.batch_labels(begin, batch);
    total_loss += step(x, std::span<const i32>(y));
    ++batches;
  }
  return batches ? total_loss / static_cast<f64>(batches) : 0.0;
}

template <typename Model>
f64 evaluate_model(Model&& model, const Dataset& test, i64 batch) {
  MSH_REQUIRE(test.size() > 0);
  f64 correct_weighted = 0.0;
  i64 counted = 0;
  for (i64 begin = 0; begin < test.size(); begin += batch) {
    const i64 count = std::min(batch, test.size() - begin);
    const Tensor x = test.batch_images(begin, count);
    const auto y = test.batch_labels(begin, count);
    const Tensor logits = model.forward(x, /*training=*/false);
    correct_weighted +=
        accuracy(logits, std::span<const i32>(y)) * static_cast<f64>(count);
    counted += count;
  }
  return correct_weighted / static_cast<f64>(counted);
}

}  // namespace

f64 pretrain_backbone(BackboneClassifier& model, const TrainTestSplit& data,
                      const TrainOptions& options, Rng& rng) {
  Dataset train = data.train;  // local copy: epochs reshuffle it
  Sgd sgd(model.params(), {.lr = options.lr,
                           .momentum = options.momentum,
                           .weight_decay = options.weight_decay});
  for (i32 epoch = 0; epoch < options.epochs; ++epoch) {
    run_epoch(
        train, options.batch,
        [&](const Tensor& x, std::span<const i32> y) {
          const Tensor logits = model.forward(x, /*training=*/true);
          LossResult loss = softmax_cross_entropy(logits, y);
          model.backward(loss.grad_logits);
          sgd.step();
          return loss.loss;
        },
        rng);
    sgd.set_lr(sgd.lr() * options.lr_decay);
  }
  return evaluate_backbone(model, data.test);
}

f64 evaluate_backbone(BackboneClassifier& model, const Dataset& test,
                      i64 batch) {
  return evaluate_model(model, test, batch);
}

f64 evaluate_repnet(RepNetModel& model, const Dataset& test, i64 batch) {
  return evaluate_model(model, test, batch);
}

ScopedFakeQuant::ScopedFakeQuant(std::vector<Param*> params, i32 bits)
    : params_(std::move(params)) {
  saved_.reserve(params_.size());
  for (Param* p : params_) {
    saved_.push_back(p->value);
    p->value = fake_quantize(p->value, bits);
  }
}

ScopedFakeQuant::~ScopedFakeQuant() {
  for (size_t i = 0; i < params_.size(); ++i)
    params_[i]->value = std::move(saved_[i]);
}

void recalibrate_batchnorm(BackboneClassifier& model, const Dataset& data,
                           i64 batches, i64 batch_size, Rng& rng) {
  MSH_REQUIRE(batches > 0 && batch_size > 0);
  // Statistics must be updatable during recalibration even on an
  // otherwise-frozen backbone; the previous freeze state is restored.
  const bool was_frozen = model.backbone().batchnorm_frozen();
  model.backbone().set_batchnorm_frozen(false);
  Dataset calib = data;
  for (i64 i = 0; i < batches; ++i) {
    calib.shuffle(rng);
    const i64 count = std::min(batch_size, calib.size());
    // Training-mode forward refreshes the running mean/var; no backward,
    // no optimizer step, so weights stay exactly as pruned/quantized.
    model.forward(calib.batch_images(0, count), /*training=*/true);
  }
  model.backbone().set_batchnorm_frozen(was_frozen);
}

std::vector<Tensor> snapshot_params(const std::vector<Param*>& params) {
  std::vector<Tensor> snapshot;
  snapshot.reserve(params.size());
  for (const Param* p : params) snapshot.push_back(p->value);
  return snapshot;
}

void restore_params(const std::vector<Param*>& params,
                    const std::vector<Tensor>& snapshot) {
  MSH_REQUIRE(params.size() == snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    MSH_REQUIRE(params[i]->value.shape() == snapshot[i].shape());
    params[i]->value = snapshot[i];
    params[i]->zero_grad();
  }
}

TaskOutcome learn_task(RepNetModel& model, const TrainTestSplit& data,
                       const ContinualOptions& options, Rng& rng) {
  TaskOutcome outcome;
  outcome.task = data.train.name;

  model.backbone().set_trainable(false);
  model.start_new_task(data.train.classes, rng);
  // Detach any masks from a previous task; their owner may be gone.
  for (Param* p : model.learnable_params()) p->mask = nullptr;

  Dataset train = data.train;
  SparsityPlan& plan = outcome.sparsity;

  if (options.sparse) {
    // One-epoch gradient calibration pass: accumulate gradients over the
    // task data without updating any weight (paper §5.1).
    for (Param* p : model.learnable_params()) p->zero_grad();
    run_epoch(
        train, options.finetune.batch,
        [&](const Tensor& x, std::span<const i32> y) {
          const Tensor logits = model.forward(x, /*training=*/true);
          LossResult loss = softmax_cross_entropy(logits, y);
          model.backward(loss.grad_logits);
          return loss.loss;
        },
        rng);
    plan.prune(model.rep_conv_params(), options.nm,
               options.gradient_saliency);
    outcome.rep_kept_fraction = plan.kept_fraction();
    for (Param* p : model.learnable_params()) p->zero_grad();
  }

  Sgd sgd(model.learnable_params(),
          {.lr = options.finetune.lr,
           .momentum = options.finetune.momentum,
           .weight_decay = options.finetune.weight_decay});
  for (i32 epoch = 0; epoch < options.finetune.epochs; ++epoch) {
    run_epoch(
        train, options.finetune.batch,
        [&](const Tensor& x, std::span<const i32> y) {
          const Tensor logits = model.forward(x, /*training=*/true);
          LossResult loss = softmax_cross_entropy(logits, y);
          model.backward(loss.grad_logits);
          sgd.step();
          return loss.loss;
        },
        rng);
    sgd.set_lr(sgd.lr() * options.finetune.lr_decay);
  }
  outcome.weights_updated = sgd.elements_updated();

  outcome.accuracy_fp32 = evaluate_repnet(model, data.test);
  {
    // INT8 post-training quantization of every weight (backbone +
    // Rep path + classifier), evaluated without retraining.
    std::vector<Param*> all = model.backbone_params();
    for (Param* p : model.learnable_params()) all.push_back(p);
    ScopedFakeQuant quant(all, 8);
    outcome.accuracy_int8 = evaluate_repnet(model, data.test);
  }
  return outcome;
}

}  // namespace msh
