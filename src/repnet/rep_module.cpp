#include "repnet/rep_module.h"

namespace msh {

RepModule::RepModule(i64 in_channels, i64 out_channels, i64 bottleneck,
                     i64 stride, Rng& rng, std::string label)
    : label_(std::move(label)),
      has_pool_(stride > 1),
      reduce_({.in_channels = in_channels,
               .out_channels = bottleneck,
               .kernel = 1,
               .stride = 1,
               .padding = 0},
              rng, /*bias=*/true, label_ + ".reduce"),
      relu_(label_ + ".relu"),
      expand_({.in_channels = bottleneck,
               .out_channels = out_channels,
               .kernel = 3,
               .stride = 1,
               .padding = 1},
              rng, /*bias=*/true, label_ + ".expand") {
  MSH_REQUIRE(bottleneck > 0);
  if (has_pool_) {
    pool_ = std::make_unique<AvgPool2d>(stride, stride, label_ + ".pool");
  }
}

Tensor RepModule::forward(const Tensor& x, bool training) {
  Tensor y = has_pool_ ? pool_->forward(x, training) : x;
  y = reduce_.forward(y, training);
  y = relu_.forward(y, training);
  return expand_.forward(y, training);
}

Tensor RepModule::backward(const Tensor& grad_out) {
  Tensor g = expand_.backward(grad_out);
  g = relu_.backward(g);
  g = reduce_.backward(g);
  return has_pool_ ? pool_->backward(g) : g;
}

std::vector<Param*> RepModule::params() {
  std::vector<Param*> all = reduce_.params();
  for (Param* p : expand_.params()) all.push_back(p);
  return all;
}

}  // namespace msh
