// One learnable Rep-Net module (paper §5.1): a pooling layer followed by
// two convolutions, one of which is 1x1 — here a bottleneck 1x1 reduce,
// ReLU, and a 3x3 expand back to the stage width. The module consumes the
// connector activation (stage input + previous rep output) and produces a
// tensor shaped exactly like its backbone stage's output, so the two paths
// can exchange feature maps by element-wise addition.
#pragma once

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/pooling.h"

namespace msh {

class RepModule : public Layer {
 public:
  /// `stride` must equal the backbone stage's spatial stride so shapes
  /// line up at the merge point.
  RepModule(i64 in_channels, i64 out_channels, i64 bottleneck, i64 stride,
            Rng& rng, std::string label = "rep");

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return label_; }

  Conv2d& reduce() { return reduce_; }
  Conv2d& expand() { return expand_; }
  bool has_pool() const { return has_pool_; }
  AvgPool2d& pool() {
    MSH_REQUIRE(pool_ != nullptr);
    return *pool_;
  }

 private:
  std::string label_;
  bool has_pool_;
  std::unique_ptr<AvgPool2d> pool_;
  Conv2d reduce_;  ///< 1x1, in -> bottleneck
  Relu relu_;
  Conv2d expand_;  ///< 3x3, bottleneck -> out
};

}  // namespace msh
