// Multi-task continual learning (paper §4: "on-device multi-task
// continual learning setup").
//
// The architecture's key structural guarantee: the backbone is frozen in
// NVM, and everything a task learns — its Rep-path weights and classifier
// — is a small SRAM-resident parameter set. Storing that set per task and
// swapping it on task switch gives *zero catastrophic forgetting by
// construction*: revisiting a task restores its exact parameters.
//
// The TaskBank manages those per-task snapshots and accounts for the
// storage they cost (the quantity that bounds how many tasks a device
// can hold resident).
#pragma once

#include <map>
#include <string>

#include "repnet/repnet_model.h"
#include "repnet/sparsify.h"

namespace msh {

class TaskBank {
 public:
  explicit TaskBank(RepNetModel& model);

  /// Captures the model's current learnable state under a task name
  /// (classifier dimensions included). Overwrites an existing entry.
  void save_task(const std::string& name);

  /// Restores a task's learnable state into the model (including a
  /// classifier of the right arity). Throws if unknown.
  void activate_task(const std::string& name, Rng& rng);

  bool has_task(const std::string& name) const;
  i64 num_tasks() const { return static_cast<i64>(tasks_.size()); }
  std::vector<std::string> task_names() const;

  /// Parameter elements stored for one task / for the whole bank.
  i64 task_param_count(const std::string& name) const;
  i64 total_param_count() const;

  /// Storage bytes for the whole bank at the given weight precision,
  /// assuming N:M-compressed Rep convs (value+index) and dense INT8
  /// elsewhere. This is the SRAM/buffer budget multi-task residency
  /// costs (paper §4's storage-overhead discussion).
  i64 storage_bytes(i32 value_bits, NmConfig nm) const;

 private:
  struct TaskState {
    i64 classifier_classes = 0;
    std::vector<Tensor> rep_values;         ///< rep-path params, in order
    Tensor classifier_weight;
    Tensor classifier_bias;
  };

  RepNetModel& model_;
  std::map<std::string, TaskState> tasks_;
};

}  // namespace msh
