// Applying N:M structured sparsity to model parameters.
//
// Two flows from the paper:
//  * Backbone (§5.1): post-training magnitude pruning — the pre-trained
//    weights are masked to the N:M pattern with no retraining (accuracy
//    drop grows with sparsity: ~1.5% at 1:4, >5% at 1:8).
//  * Rep-Net path (§5.1): a one-epoch gradient calibration pass scores
//    weights, the top-N per group of M are kept, then fine-tuning learns
//    the surviving weights with the mask pinned (SGD preserves zeros).
//
// Weight matrices are [out, K] row-major; groups of M run along the
// reduction dimension K (GroupAxis::kCols), matching the column-direction
// grouping after the matrix is transposed onto the PIM array. Layers whose
// K is not a multiple of M (e.g. the 3-channel stem) are left dense, as in
// NVIDIA's N:M deployments.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "sparse/nm_config.h"

namespace msh {

/// Owns the masks referenced by the params they were attached to. Keep it
/// alive as long as the model trains/evaluates.
class SparsityPlan {
 public:
  SparsityPlan() = default;

  /// Prunes each rank-2 param to the N:M pattern using magnitude (or
  /// gradient-informed, if param.grad is non-zero) saliency; attaches the
  /// mask so optimizers preserve the pattern. Skips layers with
  /// incompatible K. Returns the number of params actually pruned.
  i64 prune(std::vector<Param*> params, NmConfig cfg,
            bool use_gradient_saliency);

  NmConfig config() const { return cfg_; }
  i64 masked_params() const { return static_cast<i64>(masks_.size()); }

  /// Fraction of weight elements kept across all pruned params.
  f64 kept_fraction() const;

 private:
  NmConfig cfg_;
  std::vector<std::unique_ptr<NmMask>> masks_;
  i64 total_elements_ = 0;
  i64 kept_elements_ = 0;
};

}  // namespace msh
