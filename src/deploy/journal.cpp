#include "deploy/journal.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

namespace msh {

namespace {

constexpr u32 kFrameMagic = 0x4A48534Du;  // "MSHJ" little-endian

/// Same reflected CRC-32 as the deployment image (IEEE 802.3).
u32 crc32(const char* data, size_t len) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = table[(crc ^ static_cast<u8>(data[i])) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

constexpr size_t kHeaderBytes = 3 * sizeof(u32);

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  MSH_REQUIRE(!path_.empty());
}

void Journal::append(std::string_view payload, i64 torn_after_bytes) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  const u32 magic = kFrameMagic;
  const u32 len = static_cast<u32>(payload.size());
  const u32 crc = crc32(payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(payload.data(), payload.size());

  const size_t write_bytes =
      torn_after_bytes >= 0
          ? std::min(frame.size(), static_cast<size_t>(torn_after_bytes))
          : frame.size();
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  if (!os) throw SimulationError("Journal: cannot open " + path_);
  os.write(frame.data(), static_cast<std::streamsize>(write_bytes));
  os.flush();
  if (!os) throw SimulationError("Journal: append failed: " + path_);
}

void Journal::reset() {
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  if (!os) throw SimulationError("Journal: cannot truncate " + path_);
}

JournalReplay Journal::replay(const std::string& path) {
  JournalReplay out;
  std::ifstream file(path, std::ios::binary);
  if (!file) return out;  // no journal yet: empty, not an error
  std::ostringstream sink(std::ios::binary);
  sink << file.rdbuf();
  const std::string blob = sink.str();

  size_t pos = 0;
  while (pos < blob.size()) {
    // Stop at the first frame that cannot be intact; everything after it
    // is unrecoverable tail (a torn append, or garbage behind one).
    if (blob.size() - pos < kHeaderBytes) break;
    u32 magic = 0, len = 0, crc = 0;
    std::memcpy(&magic, blob.data() + pos, sizeof(magic));
    std::memcpy(&len, blob.data() + pos + sizeof(u32), sizeof(len));
    std::memcpy(&crc, blob.data() + pos + 2 * sizeof(u32), sizeof(crc));
    if (magic != kFrameMagic) break;
    if (blob.size() - pos - kHeaderBytes < len) break;
    const char* payload = blob.data() + pos + kHeaderBytes;
    if (crc32(payload, len) != crc) break;
    out.records.emplace_back(payload, len);
    pos += kHeaderBytes + len;
  }
  out.bytes_replayed = static_cast<i64>(pos);
  out.bytes_dropped = static_cast<i64>(blob.size() - pos);
  out.tail_torn = out.bytes_dropped > 0;
  return out;
}

}  // namespace msh
