// Hardware-in-the-loop on-device learning (paper §4, Fig 6-2), on a
// linear classification head:
//
//   forward        logits = x W^T        -> SRAM sparse PE
//   error prop     e_x    = e W          -> transposed SRAM PE (eq. 1)
//   gradient       dW     = e^T x        -> digital periphery (eq. 2)
//   update         W     -= lr dW        -> digital, then written back
//                                           to BOTH PEs (eq. 3)
//
// Every step rewrites the forward and transposed deployments, so the PE
// event counters measure the real weight-write volume of continual
// learning — the quantity Fig 8's EDP comparison turns on. With an N:M
// mask attached, updates preserve the pattern and the write volume drops
// by the density factor.
#pragma once

#include <optional>

#include "deploy/pim_layer.h"
#include "nn/loss.h"

namespace msh {

struct PimTrainerOptions {
  f32 lr = 0.05f;
  /// Optional N:M pattern for the trained weights (mask selected from the
  /// initial magnitudes; updates keep pruned positions at zero).
  std::optional<NmConfig> nm;
  u64 seed = 1;
};

class PimLinearTrainer {
 public:
  /// `features` x `classes` head trained from random init on the core.
  PimLinearTrainer(HybridCore& core, i64 features, i64 classes,
                   PimTrainerOptions options = {});

  /// One SGD step on a batch; returns the mean cross-entropy loss.
  /// x: [B, features] float inputs; labels: B class ids. When
  /// `propagated_error` is non-null it receives the transposed-PE error
  /// batch e_x [B, features] (eq. 1) — the gradient a deeper learnable
  /// path (e.g. the Rep modules) consumes from this head.
  f64 train_step(const Tensor& x, std::span<const i32> labels,
                 Tensor* propagated_error = nullptr);

  /// Hardware forward pass (for evaluation).
  Tensor forward(const Tensor& x);
  f64 evaluate(const Tensor& x, std::span<const i32> labels);

  /// Propagates an error batch through the transposed PE (eq. 1); used
  /// when this head sits on top of further learnable layers.
  Tensor propagate_error(const Tensor& error);

  /// Replaces weights and bias (shape-checked) and rewrites both PE
  /// deployments — warm-starting the head from an already-trained
  /// classifier instead of the constructor's random init. With an N:M
  /// mask attached, the mask is re-applied to the new weights.
  void set_state(const Tensor& weight, const Tensor& bias);

  const Tensor& weights() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  i64 steps() const { return steps_; }
  /// Compressed weight slots rewritten per step (both deployments).
  i64 slots_rewritten_per_step() const;
  /// Accumulated modeled PE cycles of every train_step's hardware ops
  /// (forward matmul + transposed error propagation) — the training
  /// lane's share of SRAM array time in the cycle model.
  i64 modeled_cycles() const { return modeled_cycles_; }

 private:
  void redeploy();

  HybridCore& core_;
  PimTrainerOptions options_;
  i64 features_;
  i64 classes_;
  Tensor weight_;  ///< [classes, features]
  Tensor bias_;    ///< [classes], digital
  std::optional<NmMask> mask_;
  std::unique_ptr<PimMatmulLayer> forward_pe_;
  std::unique_ptr<PimMatmulLayer> transposed_pe_;
  i64 steps_ = 0;
  i64 modeled_cycles_ = 0;
};

}  // namespace msh
