// Deployment image serialization: the compressed, quantized weight
// matrices a device ships in flash and programs into its PE arrays at
// boot. A simple, versioned little-endian binary container of named
// QuantizedNmMatrix entries.
//
// Format (version 3; versions 1 and 2 are still readable and writable
// for compatibility tooling/tests):
//   "MSHI" | u32 version |
//   u64 generation (v3+ only: durable-state snapshot counter) |
//   u64 entry_count |
//   per entry: u64 name_len | name bytes |
//              i32 n | i32 m | i64 dense_rows | i64 cols | f32 scale |
//              values  (packed_rows * cols x i8)
//              indices (packed_rows * cols x u8)
//              valid   (packed_rows * cols x u8, 0/1)
//   u32 crc32 (v2+ only: IEEE, over every preceding byte)
//
// save() is atomic: the image is serialized to a sibling temp file and
// renamed over the target, so a crash mid-save never clobbers a good
// image. load() parses the structure with a bounded cursor first and
// only then checks the CRC, so the three corruption classes raise
// *distinct* errors a recovery path can tell apart:
//   - short read / truncation  -> "truncated ..." (never aliases as CRC)
//   - bytes past the last entry -> "trailing garbage"
//   - payload bit-rot           -> "CRC mismatch"
#pragma once

#include <map>
#include <string>

#include "mapping/quantized_nm.h"

namespace msh {

class DeploymentImage {
 public:
  static constexpr u32 kCurrentVersion = 3;
  static constexpr u32 kOldestReadableVersion = 1;

  /// Adds (or replaces) a named matrix.
  void add(const std::string& name, QuantizedNmMatrix matrix);

  bool contains(const std::string& name) const;
  const QuantizedNmMatrix& get(const std::string& name) const;
  i64 size() const { return static_cast<i64>(entries_.size()); }
  std::vector<std::string> names() const;

  /// Total payload bytes the stored slots occupy (value+index+valid).
  i64 payload_bytes() const;

  /// Durable-state snapshot counter carried in the v3 header (0 for
  /// freshly exported or pre-v3 images). Monotonically assigned by the
  /// recovery layer's DurableState; lets a loader rank snapshot files
  /// and a resumed learner report how far behind its checkpoint is.
  u64 generation() const { return generation_; }
  void set_generation(u64 generation) { generation_ = generation; }

  /// Serializes the container to bytes (what save() writes). `version`
  /// may be an older format for compatibility tests; pre-v3 formats
  /// silently drop the generation field.
  std::string serialize(u32 version = kCurrentVersion) const;

  /// Parses bytes produced by serialize(). `context` names the source in
  /// error messages (a path, or "<memory>"). Throws SimulationError with
  /// the distinct error classes documented above.
  static DeploymentImage deserialize(const std::string& blob,
                                     const std::string& context);

  /// Writes/reads the container. Throws SimulationError on I/O or format
  /// problems (bad magic, unsupported version, truncation, trailing
  /// garbage, CRC mismatch).
  void save(const std::string& path, u32 version = kCurrentVersion) const;
  static DeploymentImage load(const std::string& path);

 private:
  std::map<std::string, QuantizedNmMatrix> entries_;
  u64 generation_ = 0;
};

}  // namespace msh
