// Deployment image serialization: the compressed, quantized weight
// matrices a device ships in flash and programs into its PE arrays at
// boot. A simple, versioned little-endian binary container of named
// QuantizedNmMatrix entries.
//
// Format (version 2; version 1 = the same without the footer and is
// still readable):
//   "MSHI" | u32 version | u64 entry_count |
//   per entry: u64 name_len | name bytes |
//              i32 n | i32 m | i64 dense_rows | i64 cols | f32 scale |
//              values  (packed_rows * cols x i8)
//              indices (packed_rows * cols x u8)
//              valid   (packed_rows * cols x u8, 0/1)
//   u32 crc32 (IEEE, over every preceding byte)
//
// save() is atomic: the image is serialized to a sibling temp file and
// renamed over the target, so a crash mid-save never clobbers a good
// image. load() verifies the CRC before deserializing and refuses a
// corrupt or truncated file with a descriptive SimulationError.
#pragma once

#include <map>
#include <string>

#include "mapping/quantized_nm.h"

namespace msh {

class DeploymentImage {
 public:
  /// Adds (or replaces) a named matrix.
  void add(const std::string& name, QuantizedNmMatrix matrix);

  bool contains(const std::string& name) const;
  const QuantizedNmMatrix& get(const std::string& name) const;
  i64 size() const { return static_cast<i64>(entries_.size()); }
  std::vector<std::string> names() const;

  /// Total payload bytes the stored slots occupy (value+index+valid).
  i64 payload_bytes() const;

  /// Writes/reads the container. Throws SimulationError on I/O or format
  /// problems (bad magic, unsupported version, truncation).
  void save(const std::string& path) const;
  static DeploymentImage load(const std::string& path);

 private:
  std::map<std::string, QuantizedNmMatrix> entries_;
};

}  // namespace msh
