#include "deploy/ecc.h"

#include <bit>

#include "common/types.h"

namespace msh {
namespace {

/// Codeword positions of data bits d0..d7 (non-power-of-two slots).
constexpr i32 kDataPos[8] = {3, 5, 6, 7, 9, 10, 11, 12};

/// Scatters a data byte into its codeword positions (checks left zero).
u16 expand(u8 data) {
  u16 codeword = 0;
  for (i32 i = 0; i < 8; ++i) {
    if ((data >> i) & 1u) codeword |= static_cast<u16>(1u << kDataPos[i]);
  }
  return codeword;
}

/// Hamming check nibble c0..c3 for the data bits of `codeword`: c_p is
/// the parity over every position whose index has bit p set, which is
/// exactly the value that makes the covered group even once stored.
u8 hamming_checks(u16 codeword) {
  u8 checks = 0;
  for (i32 p = 0; p < 4; ++p) {
    u32 parity = 0;
    for (i32 pos = 1; pos <= 12; ++pos) {
      if ((pos & (1 << p)) && ((codeword >> pos) & 1u)) parity ^= 1u;
    }
    checks |= static_cast<u8>(parity << p);
  }
  return checks;
}

}  // namespace

const char* ecc_mode_name(EccMode mode) {
  switch (mode) {
    case EccMode::kNone: return "none";
    case EccMode::kParity: return "parity";
    case EccMode::kSecDed: return "secded";
  }
  return "?";
}

EccStats& EccStats::operator+=(const EccStats& other) {
  words_checked += other.words_checked;
  corrected += other.corrected;
  detected_uncorrectable += other.detected_uncorrectable;
  silent += other.silent;
  return *this;
}

u8 secded_encode(u8 data) {
  const u8 checks = hamming_checks(expand(data));
  u8 stored = checks;
  const i32 ones = std::popcount(data) + std::popcount(checks);
  if (ones & 1) stored |= 0x10;  // overall parity -> even over 13 cells
  return stored;
}

SecDedOutcome secded_decode(u8& data, u8& check) {
  MSH_REQUIRE((check & ~((1u << kSecDedCheckBits) - 1u)) == 0);
  const u8 stored_checks = check & 0x0F;
  const u8 stored_parity = (check >> 4) & 1u;
  const u8 syndrome =
      static_cast<u8>(stored_checks ^ hamming_checks(expand(data)));
  const i32 ones =
      std::popcount(data) + std::popcount(stored_checks) + stored_parity;
  const bool parity_odd = (ones & 1) != 0;

  if (syndrome == 0 && !parity_odd) return SecDedOutcome::kClean;
  if (!parity_odd) {
    // Nonzero syndrome with even overall parity: an even number of
    // flips. Detect, never miscorrect.
    return SecDedOutcome::kDetectedDouble;
  }
  // Odd parity: single error (or an odd-count burst that aliases to
  // one — indistinguishable by construction).
  if (syndrome == 0) {
    check ^= 0x10;  // the overall-parity cell itself flipped
    return SecDedOutcome::kCorrectedSingle;
  }
  if (std::has_single_bit(syndrome)) {
    // Error at a check position 2^p: repair stored check bit p.
    check ^= static_cast<u8>(syndrome);
    return SecDedOutcome::kCorrectedSingle;
  }
  for (i32 i = 0; i < 8; ++i) {
    if (kDataPos[i] == syndrome) {
      data ^= static_cast<u8>(1u << i);
      return SecDedOutcome::kCorrectedSingle;
    }
  }
  // Syndrome names a position outside the 12-cell codeword (13..15):
  // only reachable with >= 3 flips. Flag, don't touch.
  return SecDedOutcome::kDetectedDouble;
}

u8 parity_bit(u8 word, i32 nbits) {
  MSH_REQUIRE(nbits >= 1 && nbits <= 8);
  const u8 mask = static_cast<u8>((1u << nbits) - 1u);
  return static_cast<u8>(std::popcount(static_cast<u8>(word & mask)) & 1);
}

}  // namespace msh
