#include "deploy/image_io.h"

#include <cstring>
#include <fstream>

namespace msh {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'H', 'I'};
constexpr u32 kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw SimulationError("DeploymentImage: truncated file");
  return value;
}

template <typename T>
void write_vec(std::ostream& os, std::span<const T> data) {
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, size_t count) {
  std::vector<T> data(count);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) throw SimulationError("DeploymentImage: truncated payload");
  return data;
}

}  // namespace

void DeploymentImage::add(const std::string& name, QuantizedNmMatrix matrix) {
  MSH_REQUIRE(!name.empty());
  entries_.insert_or_assign(name, std::move(matrix));
}

bool DeploymentImage::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const QuantizedNmMatrix& DeploymentImage::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw ContractError("DeploymentImage: no entry '" + name + "'");
  return it->second;
}

std::vector<std::string> DeploymentImage::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, matrix] : entries_) names.push_back(name);
  return names;
}

i64 DeploymentImage::payload_bytes() const {
  i64 bytes = 0;
  for (const auto& [name, matrix] : entries_)
    bytes += 3 * matrix.packed_rows() * matrix.cols();
  return bytes;
}

void DeploymentImage::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw SimulationError("DeploymentImage: cannot open " + path);
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<u64>(entries_.size()));
  for (const auto& [name, matrix] : entries_) {
    write_pod(os, static_cast<u64>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(os, static_cast<i32>(matrix.config().n));
    write_pod(os, static_cast<i32>(matrix.config().m));
    write_pod(os, matrix.dense_rows());
    write_pod(os, matrix.cols());
    write_pod(os, matrix.scale());
    write_vec(os, matrix.raw_values());
    write_vec(os, matrix.raw_indices());
    write_vec(os, matrix.raw_valid());
  }
  if (!os) throw SimulationError("DeploymentImage: write failed: " + path);
}

DeploymentImage DeploymentImage::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SimulationError("DeploymentImage: cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw SimulationError("DeploymentImage: bad magic in " + path);
  const u32 version = read_pod<u32>(is);
  if (version != kVersion)
    throw SimulationError("DeploymentImage: unsupported version " +
                          std::to_string(version));

  DeploymentImage image;
  const u64 count = read_pod<u64>(is);
  for (u64 e = 0; e < count; ++e) {
    const u64 name_len = read_pod<u64>(is);
    if (name_len > 4096)
      throw SimulationError("DeploymentImage: implausible name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw SimulationError("DeploymentImage: truncated name");

    NmConfig cfg;
    cfg.n = read_pod<i32>(is);
    cfg.m = read_pod<i32>(is);
    const i64 dense_rows = read_pod<i64>(is);
    const i64 cols = read_pod<i64>(is);
    const f32 scale = read_pod<f32>(is);
    if (!cfg.valid() || dense_rows <= 0 || cols <= 0 ||
        dense_rows % cfg.m != 0) {
      throw SimulationError("DeploymentImage: corrupt entry header");
    }
    const size_t total =
        static_cast<size_t>(dense_rows / cfg.m * cfg.n * cols);
    auto values = read_vec<i8>(is, total);
    auto indices = read_vec<u8>(is, total);
    auto valid = read_vec<u8>(is, total);
    image.add(name,
              QuantizedNmMatrix::from_raw(cfg, dense_rows, cols, scale,
                                          std::move(values),
                                          std::move(indices),
                                          std::move(valid)));
  }
  return image;
}

}  // namespace msh
