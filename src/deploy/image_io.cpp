#include "deploy/image_io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace msh {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'H', 'I'};
// v1: no integrity footer. v2 appends a CRC-32 of every preceding byte;
// load still accepts v1 images (no footer to check).
constexpr u32 kVersion = 2;
constexpr u32 kOldestReadableVersion = 1;

/// Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320).
u32 crc32(const char* data, size_t len) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = table[(crc ^ static_cast<u8>(data[i])) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw SimulationError("DeploymentImage: truncated file");
  return value;
}

template <typename T>
void write_vec(std::ostream& os, std::span<const T> data) {
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, size_t count) {
  std::vector<T> data(count);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) throw SimulationError("DeploymentImage: truncated payload");
  return data;
}

std::string hex32(u32 value) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", value);
  return buf;
}

}  // namespace

void DeploymentImage::add(const std::string& name, QuantizedNmMatrix matrix) {
  MSH_REQUIRE(!name.empty());
  entries_.insert_or_assign(name, std::move(matrix));
}

bool DeploymentImage::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const QuantizedNmMatrix& DeploymentImage::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw ContractError("DeploymentImage: no entry '" + name + "'");
  return it->second;
}

std::vector<std::string> DeploymentImage::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, matrix] : entries_) names.push_back(name);
  return names;
}

i64 DeploymentImage::payload_bytes() const {
  i64 bytes = 0;
  for (const auto& [name, matrix] : entries_)
    bytes += 3 * matrix.packed_rows() * matrix.cols();
  return bytes;
}

void DeploymentImage::save(const std::string& path) const {
  // Serialize to memory first: the CRC footer covers the whole body, and
  // the temp-file + rename publish below needs a single complete write.
  std::ostringstream buf(std::ios::binary);
  buf.write(kMagic, 4);
  write_pod(buf, kVersion);
  write_pod(buf, static_cast<u64>(entries_.size()));
  for (const auto& [name, matrix] : entries_) {
    write_pod(buf, static_cast<u64>(name.size()));
    buf.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(buf, static_cast<i32>(matrix.config().n));
    write_pod(buf, static_cast<i32>(matrix.config().m));
    write_pod(buf, matrix.dense_rows());
    write_pod(buf, matrix.cols());
    write_pod(buf, matrix.scale());
    write_vec(buf, matrix.raw_values());
    write_vec(buf, matrix.raw_indices());
    write_vec(buf, matrix.raw_valid());
  }
  std::string body = buf.str();
  const u32 crc = crc32(body.data(), body.size());
  body.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  // Atomic publish: write a sibling temp file, then rename over the
  // target. A crash mid-save leaves the old image intact; readers never
  // observe a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SimulationError("DeploymentImage: cannot open " + tmp);
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw SimulationError("DeploymentImage: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SimulationError("DeploymentImage: cannot publish " + path);
  }
}

DeploymentImage DeploymentImage::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SimulationError("DeploymentImage: cannot open " + path);
  std::ostringstream sink(std::ios::binary);
  sink << file.rdbuf();
  std::string blob = sink.str();

  if (blob.size() < 4 + sizeof(u32) + sizeof(u64) ||
      std::memcmp(blob.data(), kMagic, 4) != 0)
    throw SimulationError("DeploymentImage: bad magic in " + path);
  u32 version = 0;
  std::memcpy(&version, blob.data() + 4, sizeof(version));
  if (version < kOldestReadableVersion || version > kVersion)
    throw SimulationError("DeploymentImage: unsupported version " +
                          std::to_string(version));
  if (version >= 2) {
    // The last 4 bytes are the CRC-32 of everything before them.
    if (blob.size() < 4 + sizeof(u32) + sizeof(u64) + sizeof(u32))
      throw SimulationError("DeploymentImage: truncated file");
    u32 stored = 0;
    std::memcpy(&stored, blob.data() + blob.size() - sizeof(stored),
                sizeof(stored));
    blob.resize(blob.size() - sizeof(stored));
    const u32 computed = crc32(blob.data(), blob.size());
    if (stored != computed) {
      throw SimulationError(
          "DeploymentImage: CRC mismatch in " + path + " (stored " +
          hex32(stored) + ", computed " + hex32(computed) +
          "): refusing to deploy a corrupt image");
    }
  }

  std::istringstream is(blob, std::ios::binary);
  is.ignore(4 + sizeof(u32));  // magic + version, validated above

  DeploymentImage image;
  const u64 count = read_pod<u64>(is);
  for (u64 e = 0; e < count; ++e) {
    const u64 name_len = read_pod<u64>(is);
    if (name_len > 4096)
      throw SimulationError("DeploymentImage: implausible name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!is) throw SimulationError("DeploymentImage: truncated name");

    NmConfig cfg;
    cfg.n = read_pod<i32>(is);
    cfg.m = read_pod<i32>(is);
    const i64 dense_rows = read_pod<i64>(is);
    const i64 cols = read_pod<i64>(is);
    const f32 scale = read_pod<f32>(is);
    if (!cfg.valid() || dense_rows <= 0 || cols <= 0 ||
        dense_rows % cfg.m != 0) {
      throw SimulationError("DeploymentImage: corrupt entry header");
    }
    const size_t total =
        static_cast<size_t>(dense_rows / cfg.m * cfg.n * cols);
    auto values = read_vec<i8>(is, total);
    auto indices = read_vec<u8>(is, total);
    auto valid = read_vec<u8>(is, total);
    image.add(name,
              QuantizedNmMatrix::from_raw(cfg, dense_rows, cols, scale,
                                          std::move(values),
                                          std::move(indices),
                                          std::move(valid)));
  }
  return image;
}

}  // namespace msh
