#include "deploy/image_io.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace msh {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'H', 'I'};

/// Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320).
u32 crc32(const char* data, size_t len) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = table[(crc ^ static_cast<u8>(data[i])) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::string hex32(u32 value) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", value);
  return buf;
}

/// Bounded little-endian reader over the in-memory blob. Every read
/// checks `remaining()` up front, so a short-read file fails with an
/// explicit "truncated <what>" error naming the field it ran out in —
/// it can never alias as a CRC failure or trigger a giant allocation
/// from a half-read length field.
class Cursor {
 public:
  Cursor(const char* data, size_t size, const std::string& context)
      : data_(data), size_(size), context_(context) {}

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

  template <typename T>
  T pod(const char* what) {
    T value{};
    bytes(&value, sizeof(T), what);
    return value;
  }

  void bytes(void* dst, size_t n, const char* what) {
    if (remaining() < n) {
      throw SimulationError("DeploymentImage: truncated " +
                            std::string(what) + " in " + context_ +
                            " (short read: need " + std::to_string(n) +
                            " byte(s), " + std::to_string(remaining()) +
                            " left)");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  template <typename T>
  std::vector<T> vec(size_t count, const char* what) {
    std::vector<T> out;
    // Reserve only what the blob can actually back: a corrupt count is
    // caught by the bounds check before it becomes a huge allocation.
    if (remaining() < count * sizeof(T)) {
      throw SimulationError("DeploymentImage: truncated " +
                            std::string(what) + " in " + context_ +
                            " (short read: need " +
                            std::to_string(count * sizeof(T)) +
                            " byte(s), " + std::to_string(remaining()) +
                            " left)");
    }
    out.resize(count);
    std::memcpy(out.data(), data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return out;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& context_;
};

}  // namespace

void DeploymentImage::add(const std::string& name, QuantizedNmMatrix matrix) {
  MSH_REQUIRE(!name.empty());
  entries_.insert_or_assign(name, std::move(matrix));
}

bool DeploymentImage::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const QuantizedNmMatrix& DeploymentImage::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw ContractError("DeploymentImage: no entry '" + name + "'");
  return it->second;
}

std::vector<std::string> DeploymentImage::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, matrix] : entries_) names.push_back(name);
  return names;
}

i64 DeploymentImage::payload_bytes() const {
  i64 bytes = 0;
  for (const auto& [name, matrix] : entries_)
    bytes += 3 * matrix.packed_rows() * matrix.cols();
  return bytes;
}

std::string DeploymentImage::serialize(u32 version) const {
  MSH_REQUIRE(version >= kOldestReadableVersion &&
              version <= kCurrentVersion);
  std::ostringstream buf(std::ios::binary);
  buf.write(kMagic, 4);
  write_pod(buf, version);
  if (version >= 3) write_pod(buf, generation_);
  write_pod(buf, static_cast<u64>(entries_.size()));
  for (const auto& [name, matrix] : entries_) {
    write_pod(buf, static_cast<u64>(name.size()));
    buf.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(buf, static_cast<i32>(matrix.config().n));
    write_pod(buf, static_cast<i32>(matrix.config().m));
    write_pod(buf, matrix.dense_rows());
    write_pod(buf, matrix.cols());
    write_pod(buf, matrix.scale());
    const auto values = matrix.raw_values();
    const auto indices = matrix.raw_indices();
    const auto valid = matrix.raw_valid();
    buf.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size()));
    buf.write(reinterpret_cast<const char*>(indices.data()),
              static_cast<std::streamsize>(indices.size()));
    buf.write(reinterpret_cast<const char*>(valid.data()),
              static_cast<std::streamsize>(valid.size()));
  }
  std::string body = buf.str();
  if (version >= 2) {
    const u32 crc = crc32(body.data(), body.size());
    body.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  return body;
}

DeploymentImage DeploymentImage::deserialize(const std::string& blob,
                                             const std::string& context) {
  if (blob.size() < 4 + sizeof(u32)) {
    throw SimulationError("DeploymentImage: truncated header in " + context +
                          " (short read: " + std::to_string(blob.size()) +
                          " byte(s))");
  }
  if (std::memcmp(blob.data(), kMagic, 4) != 0)
    throw SimulationError("DeploymentImage: bad magic in " + context);
  u32 version = 0;
  std::memcpy(&version, blob.data() + 4, sizeof(version));
  if (version < kOldestReadableVersion || version > kCurrentVersion)
    throw SimulationError("DeploymentImage: unsupported version " +
                          std::to_string(version) + " in " + context);

  // Structural parse first, with a bounded cursor over everything except
  // the (v2+) CRC footer; only a file that parses clean with exactly zero
  // leftover bytes reaches the CRC check. This is what keeps the three
  // corruption classes distinct: truncation trips the cursor, surplus
  // bytes trip the trailing-garbage check, and bit-rot in a structurally
  // intact file trips the CRC.
  const size_t footer = version >= 2 ? sizeof(u32) : 0;
  if (blob.size() < 4 + sizeof(u32) + footer) {
    throw SimulationError("DeploymentImage: truncated footer in " + context +
                          " (short read)");
  }
  Cursor cur(blob.data(), blob.size() - footer, context);
  cur.pod<u32>("magic");  // magic + version, validated above
  cur.pod<u32>("version");

  DeploymentImage image;
  if (version >= 3) image.generation_ = cur.pod<u64>("generation");
  const u64 count = cur.pod<u64>("entry count");
  for (u64 e = 0; e < count; ++e) {
    const u64 name_len = cur.pod<u64>("entry name length");
    if (name_len == 0 || name_len > 4096)
      throw SimulationError("DeploymentImage: implausible name length in " +
                            context);
    std::string name(name_len, '\0');
    cur.bytes(name.data(), name_len, "entry name");

    NmConfig cfg;
    cfg.n = cur.pod<i32>("entry header");
    cfg.m = cur.pod<i32>("entry header");
    const i64 dense_rows = cur.pod<i64>("entry header");
    const i64 cols = cur.pod<i64>("entry header");
    const f32 scale = cur.pod<f32>("entry header");
    if (!cfg.valid() || dense_rows <= 0 || cols <= 0 ||
        dense_rows % cfg.m != 0) {
      throw SimulationError("DeploymentImage: corrupt entry header in " +
                            context);
    }
    const size_t total =
        static_cast<size_t>(dense_rows / cfg.m * cfg.n * cols);
    auto values = cur.vec<i8>(total, "values payload");
    auto indices = cur.vec<u8>(total, "indices payload");
    auto valid = cur.vec<u8>(total, "valid payload");
    image.add(name,
              QuantizedNmMatrix::from_raw(cfg, dense_rows, cols, scale,
                                          std::move(values),
                                          std::move(indices),
                                          std::move(valid)));
  }
  if (cur.remaining() != 0) {
    throw SimulationError(
        "DeploymentImage: trailing garbage in " + context + " (" +
        std::to_string(cur.remaining()) +
        " byte(s) past the last entry): refusing a tampered image");
  }

  if (version >= 2) {
    u32 stored = 0;
    std::memcpy(&stored, blob.data() + blob.size() - sizeof(stored),
                sizeof(stored));
    const u32 computed =
        crc32(blob.data(), blob.size() - sizeof(stored));
    if (stored != computed) {
      throw SimulationError(
          "DeploymentImage: CRC mismatch in " + context + " (stored " +
          hex32(stored) + ", computed " + hex32(computed) +
          "): refusing to deploy a corrupt image");
    }
  }
  log_debug("DeploymentImage: parsed v", version, " image from ", context,
            " (", image.size(), " entries, generation ", image.generation_,
            version >= 2 ? ", CRC ok)" : ", no CRC footer)");
  return image;
}

void DeploymentImage::save(const std::string& path, u32 version) const {
  // Serialize to memory first: the CRC footer covers the whole body, and
  // the temp-file + rename publish below needs a single complete write.
  const std::string body = serialize(version);

  // Atomic publish: write a sibling temp file, then rename over the
  // target. A crash mid-save leaves the old image intact; readers never
  // observe a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SimulationError("DeploymentImage: cannot open " + tmp);
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw SimulationError("DeploymentImage: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SimulationError("DeploymentImage: cannot publish " + path);
  }
}

DeploymentImage DeploymentImage::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SimulationError("DeploymentImage: cannot open " + path);
  std::ostringstream sink(std::ios::binary);
  sink << file.rdbuf();
  return deserialize(sink.str(), path);
}

}  // namespace msh
