#include "deploy/pim_executor.h"

#include "nn/loss.h"

#include <algorithm>
#include <cmath>

namespace msh {

namespace {

Tensor relu_eval(Tensor x) {
  for (i64 i = 0; i < x.numel(); ++i) x[i] = std::max(x[i], 0.0f);
  return x;
}

// Side-effect-free average pool. The nn::AvgPool2d layer caches its input
// shape for backward even in eval mode; hardware-mode inference must not
// write to the shared model, so the digital periphery pools here instead.
Tensor avg_pool_eval(const Tensor& x, i64 kernel, i64 stride) {
  const i64 n = x.shape()[0], c = x.shape()[1], h = x.shape()[2],
            w = x.shape()[3];
  const i64 ho = (h - kernel) / stride + 1;
  const i64 wo = (w - kernel) / stride + 1;
  MSH_REQUIRE(ho > 0 && wo > 0);
  Tensor y(Shape{n, c, ho, wo});
  const f32 inv = 1.0f / static_cast<f32>(kernel * kernel);
  i64 out = 0;
  for (i64 img = 0; img < n; ++img) {
    for (i64 ch = 0; ch < c; ++ch) {
      const i64 plane = (img * c + ch) * h * w;
      for (i64 oy = 0; oy < ho; ++oy) {
        for (i64 ox = 0; ox < wo; ++ox, ++out) {
          f32 acc = 0.0f;
          for (i64 ky = 0; ky < kernel; ++ky)
            for (i64 kx = 0; kx < kernel; ++kx)
              acc += x[plane + (oy * stride + ky) * w + (ox * stride + kx)];
          y[out] = acc * inv;
        }
      }
    }
  }
  return y;
}

// Wear-tracker array keys: one surface per physical cell column group of
// a deployed layer. Keyed by stable layer name so the keys survive
// executor rebuilds (same banks, fresh HybridCore).
std::string wear_key_weights(const std::string& name) { return name + "/w"; }
std::string wear_key_indices(const std::string& name) { return name + "/i"; }
std::string wear_key_checks(const std::string& name) { return name + "/c"; }
std::string wear_key_parity(const std::string& name) { return name + "/p"; }

}  // namespace

// The executor-level backend knob wins over whatever the caller left in
// the nested core options — one switch flips the whole replica.
static HybridCoreOptions core_options(const PimExecutorOptions& options) {
  HybridCoreOptions core = options.core;
  core.backend = options.backend;
  return core;
}

PimRepNetExecutor::PimRepNetExecutor(RepNetModel& model,
                                     const Dataset& calibration,
                                     PimExecutorOptions options)
    : model_(model), options_(options), core_(core_options(options)) {
  if (options_.intra_op_threads > 1) {
    intra_pool_ = std::make_unique<ThreadPool>(options_.intra_op_threads);
    core_.set_intra_op_pool(intra_pool_.get());
  }
  calibrate(calibration);
  deploy();
}

PimRepNetExecutor::PimRepNetExecutor(
    RepNetModel& model, PimExecutorOptions options,
    const std::unordered_map<const void*, f32>& amax,
    std::shared_ptr<const DeploymentImage> image)
    : model_(model),
      options_(options),
      core_(core_options(options)),
      input_amax_(amax),
      source_image_(std::move(image)) {
  if (options_.intra_op_threads > 1) {
    intra_pool_ = std::make_unique<ThreadPool>(options_.intra_op_threads);
    core_.set_intra_op_pool(intra_pool_.get());
  }
  deploy();
}

std::unique_ptr<PimRepNetExecutor> PimRepNetExecutor::clone() const {
  // Skips the calibration walk (which runs layers in software and is
  // not read-only on the shared model) and redeploys from the recorded
  // ranges: bit-identical to this executor's as-programmed state.
  return std::unique_ptr<PimRepNetExecutor>(
      new PimRepNetExecutor(model_, options_, input_amax_, source_image_));
}

std::unique_ptr<PimRepNetExecutor> PimRepNetExecutor::clone_with_wear(
    std::shared_ptr<MramWearTracker> wear, WearPath path) const {
  PimExecutorOptions options = options_;
  options.wear = std::move(wear);
  options.wear_path = path;
  return std::unique_ptr<PimRepNetExecutor>(
      new PimRepNetExecutor(model_, options, input_amax_, source_image_));
}

std::unique_ptr<PimRepNetExecutor> PimRepNetExecutor::clone_with_image(
    std::shared_ptr<const DeploymentImage> image) const {
  MSH_REQUIRE(image != nullptr);
  return std::unique_ptr<PimRepNetExecutor>(
      new PimRepNetExecutor(model_, options_, input_amax_, std::move(image)));
}

std::unique_ptr<PimRepNetExecutor> PimRepNetExecutor::deploy_from_image(
    RepNetModel& model, PimExecutorOptions options,
    std::unordered_map<const void*, f32> amax,
    std::shared_ptr<const DeploymentImage> image) {
  MSH_REQUIRE(image != nullptr);
  return std::unique_ptr<PimRepNetExecutor>(
      new PimRepNetExecutor(model, options, amax, std::move(image)));
}

void PimRepNetExecutor::calibrate(const Dataset& calibration) {
  MSH_REQUIRE(calibration.size() > 0);
  const i64 batch = std::min(options_.calibration_batch, calibration.size());
  for (i64 b = 0; b < options_.calibration_batches; ++b) {
    const i64 begin = (b * batch) % std::max<i64>(1, calibration.size() - batch + 1);
    walk(calibration.batch_images(begin, batch), Mode::kCalibrate);
  }
}

f32 PimRepNetExecutor::scale_for(const void* layer) const {
  const auto it = input_amax_.find(layer);
  MSH_REQUIRE(it != input_amax_.end());
  const f32 amax = std::max(it->second, 1e-6f);
  return amax / 127.0f;
}

void PimRepNetExecutor::deploy() {
  Backbone& backbone = model_.backbone();
  named_layers_.clear();
  auto preset_for = [&](const std::string& name) -> const QuantizedNmMatrix* {
    if (!source_image_) return nullptr;
    if (!source_image_->contains(name)) {
      throw SimulationError("PimRepNetExecutor: deployment image has no "
                            "entry for layer '" + name + "'");
    }
    return &source_image_->get(name);
  };
  auto deploy_conv = [&](const std::string& name, Conv2d& conv,
                         PeKind target) {
    auto deployed = std::make_unique<PimConv>(core_, conv, options_.nm,
                                              target, scale_for(&conv),
                                              preset_for(name));
    named_layers_.emplace_back(name, &deployed->matmul_layer());
    convs_.emplace(&conv, std::move(deployed));
  };

  // Frozen backbone -> MRAM.
  for (i64 i = 0; i < backbone.stem().size(); ++i) {
    if (auto* conv = dynamic_cast<Conv2d*>(&backbone.stem().layer(i)))
      deploy_conv("stem." + std::to_string(i), *conv, PeKind::kMram);
  }
  for (i64 s = 0; s < backbone.num_stages(); ++s) {
    Sequential& stage = backbone.stage(s);
    for (i64 b = 0; b < stage.size(); ++b) {
      auto* block = dynamic_cast<ResidualBlock*>(&stage.layer(b));
      MSH_ENSURE(block != nullptr);
      const std::string prefix =
          "stage" + std::to_string(s) + ".block" + std::to_string(b);
      deploy_conv(prefix + ".conv1", block->conv1(), PeKind::kMram);
      deploy_conv(prefix + ".conv2", block->conv2(), PeKind::kMram);
      if (block->has_projection())
        deploy_conv(prefix + ".proj", block->projection(), PeKind::kMram);
    }
  }
  // Learnable path -> SRAM.
  for (i64 m = 0; m < model_.num_rep_modules(); ++m) {
    RepModule& rep = model_.rep_module(m);
    const std::string prefix = "rep" + std::to_string(m);
    deploy_conv(prefix + ".reduce", rep.reduce(), PeKind::kSram);
    deploy_conv(prefix + ".expand", rep.expand(), PeKind::kSram);
  }
  classifier_ = std::make_unique<PimLinear>(
      core_, model_.classifier(), options_.nm, PeKind::kSram,
      scale_for(&model_.classifier()), preset_for("classifier"));
  named_layers_.emplace_back("classifier", &classifier_->matmul_layer());

  protect_arrays();
  handle_names_.assign(static_cast<size_t>(core_.num_deployments()), "");
  for (const auto& [name, layer] : named_layers_)
    handle_names_[static_cast<size_t>(layer->handle())] = name;
  // Protection snapshots the intended (golden) codes first; the physical
  // programming pass below may then leave achieved != desired on worn or
  // verify-failed words, which scrub/verify judge against that intent.
  program_nvm_wear(options_.wear_path);
}

void PimRepNetExecutor::program_nvm_wear(WearPath path) {
  if (!options_.wear) return;
  MramWearTracker& wear = *options_.wear;
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    if (view.is_sram) continue;  // CMOS arrays do not wear
    ArrayProtection& p = protections_[static_cast<size_t>(h)];
    const std::string& name = handle_names_[static_cast<size_t>(h)];
    const i32 idx_bits = std::max(1, view.index_bits);

    std::vector<u8> desired(p.golden_weights.size());
    std::vector<u8> achieved(p.golden_weights.size());
    for (size_t i = 0; i < desired.size(); ++i)
      desired[i] = static_cast<u8>(p.golden_weights[i]);
    wear.program(wear_key_weights(name), desired, achieved, 8, path);
    for (size_t i = 0; i < achieved.size(); ++i)
      *view.weights[i] = static_cast<i8>(achieved[i]);

    desired.assign(p.golden_indices.begin(), p.golden_indices.end());
    achieved.resize(desired.size());
    wear.program(wear_key_indices(name), desired, achieved, idx_bits, path);
    for (size_t i = 0; i < achieved.size(); ++i)
      *view.indices[i] = achieved[i];

    if (options_.ecc != EccMode::kNone) {
      // Check/parity cells share the imperfect medium. Desired values
      // re-derive from golden (p.weight_checks holds the *achieved*
      // state once programming goes through the tracker).
      desired.resize(p.golden_weights.size());
      achieved.resize(desired.size());
      for (size_t i = 0; i < desired.size(); ++i) {
        desired[i] = options_.ecc == EccMode::kSecDed
                         ? secded_encode(static_cast<u8>(p.golden_weights[i]))
                         : parity_bit(static_cast<u8>(p.golden_weights[i]), 8);
      }
      const i32 check_bits =
          options_.ecc == EccMode::kSecDed ? kSecDedCheckBits : 1;
      wear.program(wear_key_checks(name), desired, achieved, check_bits,
                   path);
      p.weight_checks.assign(achieved.begin(), achieved.end());

      desired.resize(p.golden_indices.size());
      achieved.resize(desired.size());
      for (size_t i = 0; i < desired.size(); ++i)
        desired[i] = parity_bit(p.golden_indices[i], idx_bits);
      wear.program(wear_key_parity(name), desired, achieved, 1, path);
      p.index_parity.assign(achieved.begin(), achieved.end());
    }
  }
}

void PimRepNetExecutor::reprogram_nvm(WearPath path) {
  program_nvm_wear(path);
}

void PimRepNetExecutor::sync_wear_resident(i64 handle) {
  if (!options_.wear) return;
  const HybridCore::NvmCodeView view = core_.nvm_codes(handle);
  if (view.is_sram) return;
  MramWearTracker& wear = *options_.wear;
  const ArrayProtection& p = protections_[static_cast<size_t>(handle)];
  const std::string& name = handle_names_[static_cast<size_t>(handle)];
  std::vector<u8> values(view.weights.size());
  for (size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<u8>(*view.weights[i]);
  wear.absorb_disturbance(wear_key_weights(name), values);
  values.resize(view.indices.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = *view.indices[i];
  wear.absorb_disturbance(wear_key_indices(name), values);
  if (options_.ecc != EccMode::kNone) {
    wear.absorb_disturbance(wear_key_checks(name), p.weight_checks);
    wear.absorb_disturbance(wear_key_parity(name), p.index_parity);
  }
}

std::vector<std::string> PimRepNetExecutor::layer_names() const {
  std::vector<std::string> names;
  names.reserve(named_layers_.size());
  for (const auto& [name, layer] : named_layers_) names.push_back(name);
  return names;
}

DeploymentImage PimRepNetExecutor::export_image() const {
  DeploymentImage image;
  for (const auto& [name, layer] : named_layers_)
    image.add(name, layer->deployed_matrix());
  return image;
}

std::string PimRepNetExecutor::verify_against(const DeploymentImage& image) {
  for (const auto& [name, layer] : named_layers_) {
    if (!image.contains(name))
      return "layer '" + name + "': no entry in the deployment image";
    const QuantizedNmMatrix& want = image.get(name);
    const QuantizedNmMatrix& have = layer->deployed_matrix();
    if (want.config().n != have.config().n ||
        want.config().m != have.config().m ||
        want.dense_rows() != have.dense_rows() ||
        want.cols() != have.cols()) {
      return "layer '" + name + "': geometry mismatch (image " +
             std::to_string(want.dense_rows()) + " x " +
             std::to_string(want.cols()) + " @ " +
             std::to_string(want.config().n) + ":" +
             std::to_string(want.config().m) + ")";
    }
    if (want.scale() != have.scale())
      return "layer '" + name + "': dequantization scale mismatch";
    // Physical probe: a deterministic INT8 vector through the live PE
    // arrays must reproduce the image's reference matvec bit-exactly.
    // Catches programming corruption the metadata checks above cannot.
    std::vector<i8> probe(static_cast<size_t>(want.dense_rows()));
    for (size_t i = 0; i < probe.size(); ++i)
      probe[i] = static_cast<i8>(static_cast<i64>(i * 37 + 11) % 255 - 127);
    const std::vector<i32> expect = want.reference_matvec(probe);
    const std::vector<i32> got = core_.matvec(layer->handle(), probe);
    MSH_ENSURE(expect.size() == got.size());
    for (size_t c = 0; c < got.size(); ++c) {
      if (got[c] != expect[c]) {
        return "layer '" + name + "': probe matvec diverges at column " +
               std::to_string(c) + " (array " + std::to_string(got[c]) +
               ", image " + std::to_string(expect[c]) + ")";
      }
    }
  }
  return "";
}

void PimRepNetExecutor::protect_arrays() {
  protections_.clear();
  protections_.reserve(static_cast<size_t>(core_.num_deployments()));
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    const i32 idx_bits = std::max(1, view.index_bits);
    ArrayProtection p;
    p.golden_weights.reserve(view.weights.size());
    p.golden_indices.reserve(view.indices.size());
    for (const i8* w : view.weights) p.golden_weights.push_back(*w);
    for (const u8* idx : view.indices) p.golden_indices.push_back(*idx);
    if (options_.ecc != EccMode::kNone) {
      p.weight_checks.reserve(view.weights.size());
      for (const i8* w : view.weights) {
        p.weight_checks.push_back(options_.ecc == EccMode::kSecDed
                                      ? secded_encode(static_cast<u8>(*w))
                                      : parity_bit(static_cast<u8>(*w), 8));
      }
      p.index_parity.reserve(view.indices.size());
      for (const u8* idx : view.indices)
        p.index_parity.push_back(parity_bit(*idx, idx_bits));
    }
    protections_.push_back(std::move(p));
  }
}

FaultStats PimRepNetExecutor::inject_nvm_faults(const MtjFaultModel& model,
                                                Rng& rng) {
  FaultStats total;
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    if (view.is_sram) continue;  // CMOS cells: no MTJ failure modes
    const i32 idx_bits = std::max(1, view.index_bits);
    total += inject_bit_errors(view.weights, model, rng, 8);
    total += inject_bit_errors(view.indices, model, rng, idx_bits);
    if (options_.ecc != EccMode::kNone) {
      // Check cells occupy spare columns of the same imperfect array.
      ArrayProtection& p = protections_[static_cast<size_t>(h)];
      const i32 check_bits =
          options_.ecc == EccMode::kSecDed ? kSecDedCheckBits : 1;
      total += inject_bit_errors(std::span<u8>(p.weight_checks), model, rng,
                                 check_bits);
      total += inject_bit_errors(std::span<u8>(p.index_parity), model, rng, 1);
    }
    // Faults change what the cells hold without write pulses; keep the
    // wear tracker's resident view (and thus delta programming) honest.
    sync_wear_resident(h);
  }
  return total;
}

PimRepNetExecutor::PowerLossStats PimRepNetExecutor::power_fail(
    f64 outage_s, u64 seed, f64 retention_tau_s) {
  MSH_REQUIRE(outage_s >= 0.0);
  PowerLossStats stats;
  Rng rng(seed ^ 0xdeadbeefcafef00dull);
  const MtjFaultModel drift =
      MtjFaultModel::retention_only(outage_s, retention_tau_s);
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    ArrayProtection& p = protections_[static_cast<size_t>(h)];
    if (view.is_sram) {
      // CMOS arrays power up in an undefined state: scramble every cell,
      // including the spare check columns — nothing volatile survives.
      const u8 idx_mask = static_cast<u8>(
          (1u << static_cast<u32>(std::max(1, view.index_bits))) - 1u);
      for (i8* w : view.weights)
        *w = static_cast<i8>(rng.next_u64() & 0xFFu);
      for (u8* idx : view.indices)
        *idx = static_cast<u8>(rng.next_u64()) & idx_mask;
      for (u8& check : p.weight_checks)
        check = static_cast<u8>(rng.next_u64() & 0x1Fu);
      for (u8& parity : p.index_parity)
        parity = static_cast<u8>(rng.next_u64() & 1u);
      const i64 cells =
          static_cast<i64>(view.weights.size() + view.indices.size() +
                           p.weight_checks.size() + p.index_parity.size());
      stats.sram_cells_wiped += cells;
      stats.sram_bytes_wiped +=
          static_cast<i64>(view.weights.size() + view.indices.size());
    } else {
      // MRAM holds its state, minus thermal relaxation over the outage.
      const i32 idx_bits = std::max(1, view.index_bits);
      stats.mram_drift += inject_bit_errors(view.weights, drift, rng, 8);
      stats.mram_drift += inject_bit_errors(view.indices, drift, rng,
                                            idx_bits);
      if (options_.ecc != EccMode::kNone) {
        const i32 check_bits =
            options_.ecc == EccMode::kSecDed ? kSecDedCheckBits : 1;
        stats.mram_drift += inject_bit_errors(
            std::span<u8>(p.weight_checks), drift, rng, check_bits);
        stats.mram_drift += inject_bit_errors(std::span<u8>(p.index_parity),
                                              drift, rng, 1);
      }
      sync_wear_resident(h);  // drift moved cells without write pulses
    }
  }
  return stats;
}

PimRepNetExecutor::WarmRestartStats PimRepNetExecutor::warm_restart() {
  WarmRestartStats stats;
  // Re-program the volatile arrays from the golden copy — the host-side
  // image this deployment was flashed from — and re-derive their check
  // cells, exactly like the original protect_arrays() pass.
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    if (!view.is_sram) continue;
    ArrayProtection& p = protections_[static_cast<size_t>(h)];
    const i32 idx_bits = std::max(1, view.index_bits);
    for (size_t i = 0; i < view.weights.size(); ++i)
      *view.weights[i] = p.golden_weights[i];
    for (size_t i = 0; i < view.indices.size(); ++i)
      *view.indices[i] = p.golden_indices[i];
    if (options_.ecc != EccMode::kNone) {
      for (size_t i = 0; i < p.weight_checks.size(); ++i) {
        p.weight_checks[i] =
            options_.ecc == EccMode::kSecDed
                ? secded_encode(static_cast<u8>(p.golden_weights[i]))
                : parity_bit(static_cast<u8>(p.golden_weights[i]), 8);
      }
      for (size_t i = 0; i < p.index_parity.size(); ++i)
        p.index_parity[i] = parity_bit(p.golden_indices[i], idx_bits);
    }
    stats.sram_cells_restored +=
        static_cast<i64>(view.weights.size() + view.indices.size());
  }
  // Repairing scrub over the drifted MRAM (the SRAM arrays were just
  // restored and scrub clean). SEC-DED corrects single-bit relaxation in
  // place; detected-uncorrectable words re-fetch from golden. Whatever
  // the code missed stays behind as silent_remaining for the caller's
  // verify gate to judge.
  for (const ScrubReport& report : scrub(/*repair_detected_from_golden=*/true,
                                         WearPath::kRecovery)) {
    stats.ecc_corrected += report.weights.corrected + report.indices.corrected;
    stats.ecc_refetched += report.weights.detected_uncorrectable +
                           report.indices.detected_uncorrectable;
    stats.silent_remaining += report.weights.silent + report.indices.silent;
  }
  return stats;
}

std::vector<PimRepNetExecutor::ScrubReport> PimRepNetExecutor::scrub(
    bool repair_detected_from_golden, WearPath wear_path) {
  std::vector<ScrubReport> reports;
  reports.reserve(static_cast<size_t>(core_.num_deployments()));
  for (i64 h = 0; h < core_.num_deployments(); ++h) {
    const HybridCore::NvmCodeView view = core_.nvm_codes(h);
    ArrayProtection& p = protections_[static_cast<size_t>(h)];
    const i32 idx_bits = std::max(1, view.index_bits);
    // Repair writes on MRAM are physical programming pulses: route them
    // through the wear tracker, one *word* at a time — a scrub must never
    // amplify wear by rewriting a whole span for one bad word (and
    // read-before-write makes a repair that matches the resident value
    // free). Without a tracker (or on SRAM) the write is ideal.
    const bool wear_writes = options_.wear != nullptr && !view.is_sram;
    const std::string& lname = handle_names_[static_cast<size_t>(h)];
    const i32 check_bits =
        options_.ecc == EccMode::kSecDed ? kSecDedCheckBits : 1;
    auto mram_write = [&](const std::string& key, size_t word, u8 desired,
                          i32 bits) -> u8 {
      if (!wear_writes) return desired;
      return options_.wear->write_word(key, static_cast<i64>(word), desired,
                                       bits, wear_path);
    };
    ScrubReport report;
    report.handle = h;
    report.is_sram = view.is_sram;

    for (size_t i = 0; i < view.weights.size(); ++i) {
      ++report.weights.words_checked;
      i8& cell = *view.weights[i];
      bool detected = false;
      switch (options_.ecc) {
        case EccMode::kNone:
          break;  // nothing to decode; golden comparison below
        case EccMode::kParity: {
          if (parity_bit(static_cast<u8>(cell), 8) !=
              (p.weight_checks[i] & 1u)) {
            detected = true;
            ++report.weights.detected_uncorrectable;
            if (repair_detected_from_golden) {
              cell = static_cast<i8>(
                  mram_write(wear_key_weights(lname), i,
                             static_cast<u8>(p.golden_weights[i]), 8));
              p.weight_checks[i] = mram_write(
                  wear_key_checks(lname), i,
                  parity_bit(static_cast<u8>(p.golden_weights[i]), 8), 1);
            }
          }
          break;
        }
        case EccMode::kSecDed: {
          u8 data = static_cast<u8>(cell);
          u8 check = p.weight_checks[i];
          switch (secded_decode(data, check)) {
            case SecDedOutcome::kClean:
              break;
            case SecDedOutcome::kCorrectedSingle:
              ++report.weights.corrected;
              cell = static_cast<i8>(
                  mram_write(wear_key_weights(lname), i, data, 8));
              p.weight_checks[i] =
                  mram_write(wear_key_checks(lname), i, check, check_bits);
              break;
            case SecDedOutcome::kDetectedDouble:
              detected = true;
              ++report.weights.detected_uncorrectable;
              if (repair_detected_from_golden) {
                cell = static_cast<i8>(
                    mram_write(wear_key_weights(lname), i,
                               static_cast<u8>(p.golden_weights[i]), 8));
                p.weight_checks[i] = mram_write(
                    wear_key_checks(lname), i,
                    secded_encode(static_cast<u8>(p.golden_weights[i])),
                    check_bits);
              }
              break;
          }
          break;
        }
      }
      // Whatever survives decode (or was never protected) but differs
      // from the as-programmed image escaped the code: silent.
      if (!detected && cell != p.golden_weights[i]) ++report.weights.silent;
    }

    for (size_t i = 0; i < view.indices.size(); ++i) {
      ++report.indices.words_checked;
      u8& cell = *view.indices[i];
      bool detected = false;
      if (options_.ecc != EccMode::kNone &&
          parity_bit(cell, idx_bits) != (p.index_parity[i] & 1u)) {
        detected = true;
        ++report.indices.detected_uncorrectable;
        if (repair_detected_from_golden) {
          // Re-fetch repairs either a flipped index bit or a flipped
          // parity cell — both land back at the programmed state.
          cell = mram_write(wear_key_indices(lname), i, p.golden_indices[i],
                            idx_bits);
          p.index_parity[i] =
              mram_write(wear_key_parity(lname), i,
                         parity_bit(p.golden_indices[i], idx_bits), 1);
        }
      }
      if (!detected && cell != p.golden_indices[i]) ++report.indices.silent;
    }

    reports.push_back(report);
  }
  last_scrub_reports_ = reports;
  return reports;
}

Tensor PimRepNetExecutor::apply_conv(Conv2d& conv, const Tensor& x,
                                     Mode mode) {
  if (mode == Mode::kCalibrate) {
    auto [it, inserted] = input_amax_.emplace(&conv, x.abs_max());
    if (!inserted) it->second = std::max(it->second, x.abs_max());
    return conv.forward(x, /*training=*/false);
  }
  const auto it = convs_.find(&conv);
  MSH_ENSURE(it != convs_.end());
  return it->second->forward(x);
}

Tensor PimRepNetExecutor::apply_sequential(Sequential& seq, const Tensor& x,
                                           Mode mode) {
  Tensor y = x;
  for (i64 i = 0; i < seq.size(); ++i) {
    Layer& layer = seq.layer(i);
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      y = apply_conv(*conv, y, mode);
    } else {
      y = layer.forward(y, /*training=*/false);
    }
  }
  return y;
}

Tensor PimRepNetExecutor::apply_residual(ResidualBlock& block,
                                         const Tensor& x, Mode mode) {
  Tensor main = apply_conv(block.conv1(), x, mode);
  main = block.bn1().forward(main, false);
  main = relu_eval(std::move(main));
  main = apply_conv(block.conv2(), main, mode);
  main = block.bn2().forward(main, false);

  Tensor shortcut =
      block.has_projection()
          ? block.projection_bn().forward(
                apply_conv(block.projection(), x, mode), false)
          : x;
  main += shortcut;
  return relu_eval(std::move(main));
}

Tensor PimRepNetExecutor::apply_rep(RepModule& rep, const Tensor& x,
                                    Mode mode) {
  Tensor y = x;
  if (rep.has_pool()) {
    // Hardware mode keeps the shared model strictly read-only (replicas
    // may be forwarding concurrently); the layer's own forward caches.
    y = mode == Mode::kHardware
            ? avg_pool_eval(x, rep.pool().kernel(), rep.pool().stride())
            : rep.pool().forward(x, false);
  }
  y = apply_conv(rep.reduce(), y, mode);
  y = relu_eval(std::move(y));
  return apply_conv(rep.expand(), y, mode);
}

Tensor PimRepNetExecutor::apply_classifier(const Tensor& x, Mode mode) {
  if (mode == Mode::kCalibrate) {
    auto [it, inserted] =
        input_amax_.emplace(&model_.classifier(), x.abs_max());
    if (!inserted) it->second = std::max(it->second, x.abs_max());
    return model_.classifier().forward(x, /*training=*/false);
  }
  return classifier_->forward(x);
}

Tensor PimRepNetExecutor::walk(const Tensor& images, Mode mode) {
  Backbone& backbone = model_.backbone();
  Tensor a = apply_sequential(backbone.stem(), images, mode);
  Tensor r;
  for (i64 s = 0; s < backbone.num_stages(); ++s) {
    Tensor u = a;
    if (!r.empty()) u += r;  // activation connector
    Sequential& stage = backbone.stage(s);
    Tensor next = u;
    for (i64 b = 0; b < stage.size(); ++b) {
      auto* block = dynamic_cast<ResidualBlock*>(&stage.layer(b));
      MSH_ENSURE(block != nullptr);
      next = apply_residual(*block, next, mode);
    }
    a = std::move(next);
    r = apply_rep(model_.rep_module(s), u, mode);
  }
  Tensor merged = a;
  merged += r;

  // Global average pool + flatten, digitally.
  const i64 n = merged.shape()[0], c = merged.shape()[1],
            spatial = merged.shape()[2] * merged.shape()[3];
  Tensor features(Shape{n, c});
  for (i64 i = 0; i < n * c; ++i) {
    f64 acc = 0.0;
    for (i64 s = 0; s < spatial; ++s) acc += merged[i * spatial + s];
    features[i] = static_cast<f32>(acc / static_cast<f64>(spatial));
  }
  return apply_classifier(features, mode);
}

Tensor PimRepNetExecutor::forward(const Tensor& images) {
  return walk(images, Mode::kHardware);
}

f64 PimRepNetExecutor::evaluate(const Dataset& test, i64 batch) {
  MSH_REQUIRE(test.size() > 0);
  f64 weighted = 0.0;
  i64 counted = 0;
  for (i64 begin = 0; begin < test.size(); begin += batch) {
    const i64 count = std::min(batch, test.size() - begin);
    const Tensor logits = forward(test.batch_images(begin, count));
    const auto labels = test.batch_labels(begin, count);
    weighted += accuracy(logits, std::span<const i32>(labels)) *
                static_cast<f64>(count);
    counted += count;
  }
  return weighted / static_cast<f64>(counted);
}

std::vector<std::unique_ptr<PimRepNetExecutor>> make_executor_replicas(
    RepNetModel& model, const Dataset& calibration, i64 count,
    PimExecutorOptions options,
    const std::vector<std::shared_ptr<MramWearTracker>>& wear) {
  MSH_REQUIRE(count > 0);
  MSH_REQUIRE(wear.empty() || static_cast<i64>(wear.size()) == count);
  std::vector<std::unique_ptr<PimRepNetExecutor>> replicas;
  replicas.reserve(static_cast<size_t>(count));
  if (!wear.empty()) options.wear = wear[0];
  replicas.push_back(
      std::make_unique<PimRepNetExecutor>(model, calibration, options));
  // Remaining replicas clone the first: one calibration walk total, and
  // every clone is bit-identical to a directly constructed executor
  // (deploy() quantizes from the same recorded ranges). With wear
  // tracking, each replica programs its own physical medium.
  for (i64 i = 1; i < count; ++i) {
    replicas.push_back(
        wear.empty() ? replicas[0]->clone()
                     : replicas[0]->clone_with_wear(
                           wear[static_cast<size_t>(i)], options.wear_path));
  }
  return replicas;
}

i64 PimRepNetExecutor::sparse_deployments() const {
  i64 count = 0;
  for (const auto& [conv, deployed] : convs_) {
    count += deployed->matmul_layer().deployed_sparse();
  }
  if (classifier_ && classifier_->matmul_layer().deployed_sparse()) ++count;
  return count;
}

}  // namespace msh
