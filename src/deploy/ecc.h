// Error-correcting codes for NVM-resident weight storage.
//
// Deployed INT8 weight words can be protected with a SEC-DED Hamming
// code — Hamming(12,8) plus an overall parity bit, 13 cells per 8-bit
// word — which corrects any single bit error and detects (without
// miscorrecting) any double. N:M index nibbles, too small to justify
// Hamming overhead, get a single even-parity bit (detect-only): a
// parity hit means the index must be re-fetched from the golden model.
//
// Word layout (codeword positions 1..12, position = binary index):
//   position:  1   2   3   4   5   6   7   8   9  10  11  12
//   role:      c0  c1  d0  c2  d1  d2  d3  c3  d4  d5  d6  d7
// Check bit c_p at position 2^p covers every position whose index has
// bit p set. The stored check word packs c0..c3 in bits 0..3 and the
// overall (even) parity over all 12 positions in bit 4 — five spare
// cells per array column group.
#pragma once

#include "common/types.h"

namespace msh {

/// Protection level for NVM-deployed weight arrays.
enum class EccMode : u8 {
  kNone = 0,    ///< raw codes, faults land directly on MACs
  kParity = 1,  ///< 1 parity bit/word: detect-only, repair via re-fetch
  kSecDed = 2,  ///< Hamming(12,8)+parity: correct 1, detect 2
};

const char* ecc_mode_name(EccMode mode);

/// Per-array scrub accounting.
struct EccStats {
  i64 words_checked = 0;
  i64 corrected = 0;                ///< single-bit errors repaired in place
  i64 detected_uncorrectable = 0;   ///< flagged but not repairable by code
  i64 silent = 0;                   ///< corruption the code missed or
                                    ///< miscorrected (known vs golden only)

  bool clean() const {
    return corrected == 0 && detected_uncorrectable == 0 && silent == 0;
  }
  EccStats& operator+=(const EccStats& other);
};

enum class SecDedOutcome : u8 {
  kClean = 0,            ///< syndrome zero, parity even
  kCorrectedSingle = 1,  ///< one bit repaired (data, check, or parity)
  kDetectedDouble = 2,   ///< even # of flips: detected, not corrected
};

/// Number of stored check cells per SEC-DED-protected byte (c0..c3 +
/// overall parity).
inline constexpr i32 kSecDedCheckBits = 5;

/// Encodes one data byte; returns the 5-bit check word.
u8 secded_encode(u8 data);

/// Decodes one (data, check) pair in place, correcting a single-bit
/// error anywhere in the 13-bit codeword. Double errors are detected
/// and left untouched. `check` must fit in kSecDedCheckBits bits.
SecDedOutcome secded_decode(u8& data, u8& check);

/// Even parity bit over the low `nbits` bits of `word`.
u8 parity_bit(u8 word, i32 nbits);

}  // namespace msh
