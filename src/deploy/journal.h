// Crash-consistent append-only journal: the durable log the continual
// learner's round/optimizer checkpoints ride in across power
// interruptions (see src/runtime/recovery). Each record is framed
//
//   u32 magic "MSHJ" | u32 payload_len | u32 crc32(payload) | payload
//
// and appended with a single write. Recovery replays the longest prefix
// of intact frames and discards the tail from the first frame that is
// short, mis-magicked, or fails its CRC — a torn append can therefore
// lose at most the record being written when power died, never a record
// that was fully on the medium before it.
//
// append() takes a `torn_after_bytes` test hook that simulates exactly
// that crash: only the first N bytes of the frame reach the file, and
// the reader must prove it lands on the last intact prefix.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace msh {

/// What replay() recovered and what it had to throw away.
struct JournalReplay {
  std::vector<std::string> records;  ///< intact payloads, append order
  i64 bytes_replayed = 0;            ///< bytes of intact frames consumed
  i64 bytes_dropped = 0;             ///< torn/corrupt tail discarded
  bool tail_torn = false;            ///< a bad frame ended the replay
};

class Journal {
 public:
  explicit Journal(std::string path);

  const std::string& path() const { return path_; }

  /// Appends one framed record (one write + flush). With
  /// `torn_after_bytes` >= 0, simulates a power loss mid-append: only
  /// that many frame bytes reach the file. Values past the frame size
  /// behave like a clean append. Throws SimulationError on I/O failure.
  void append(std::string_view payload, i64 torn_after_bytes = -1);

  /// Truncates the journal to empty (a fresh epoch, e.g. after the
  /// checkpointed state was folded into a full snapshot).
  void reset();

  /// Replays the longest intact prefix of `path`. A missing file is an
  /// empty journal, not an error — cold boot and first boot look alike.
  static JournalReplay replay(const std::string& path);

 private:
  std::string path_;
};

}  // namespace msh
