// Single-layer deployment onto the hybrid core: wraps a trained conv or
// linear layer as a quantized, N:M-packed matrix resident in SRAM or MRAM
// sparse PEs, and executes it through the functional PE simulators with
// INT8 activations (symmetric, calibration-scaled).
#pragma once

#include "arch/accelerator.h"
#include "mapping/model_mapper.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace msh {

/// True if the matrix (groups of M down each column) satisfies <= N
/// non-zeros per aligned group — i.e. it can pack under `cfg` directly.
bool satisfies_nm(const Tensor& matrix, NmConfig cfg);

/// A weight matrix deployed on the core. Handles the PIM orientation
/// ([K x out], reduction on the word lines), zero-padding K to the group
/// size, dense fallback packing (M:M) for layers without an N:M pattern,
/// INT8 activation quantization and INT32->FP32 dequantization.
class PimMatmulLayer {
 public:
  /// `weight` is the layer's [out x K] matrix; `activation_scale` the
  /// calibrated symmetric scale of this layer's inputs. When `preset` is
  /// given, its already-quantized codes are programmed instead of
  /// re-quantizing `weight` — the model-swap / boot-from-flash path. The
  /// packing decision (sparse vs dense fallback) still comes from
  /// `weight`; a preset whose config or shape disagrees with that
  /// decision throws SimulationError.
  PimMatmulLayer(HybridCore& core, const Tensor& weight, NmConfig cfg,
                 PeKind target, f32 activation_scale,
                 const QuantizedNmMatrix* preset = nullptr);

  /// y[B x out] = dequant( PE( quant(x[B x K]) ) ) [+ bias].
  ///
  /// `bias` (length out, optional) is fused into the dequantization loop
  /// so every output element is written exactly once — numerically
  /// identical to dequantizing first and adding bias after (the same two
  /// FP32 roundings in the same order), but parallel-safe: rows never
  /// need a second read-modify-write pass.
  ///
  /// Quantize and dequantize shard across the core's intra-op pool when
  /// one is attached; both loops are element-independent, so the result
  /// is bit-identical to the sequential walk.
  Tensor matmul(const Tensor& x, const Tensor* bias = nullptr);

  /// The core's intra-op pool (null when execution is sequential).
  ThreadPool* intra_op_pool() const { return core_.intra_op_pool(); }

  /// Rewrites the deployment with updated weights (same shape; the N:M
  /// pattern must still hold if the layer deployed sparse). SRAM
  /// deployments only — the continual-learning write path.
  void update(const Tensor& weight);

  /// Replaces the activation scale (e.g. dynamic per-batch calibration
  /// for error tensors during backprop).
  void set_activation_scale(f32 scale);

  f32 activation_scale() const { return act_params_.scale; }
  f32 weight_scale() const { return weight_scale_; }
  NmConfig packed_config() const { return packed_cfg_; }
  bool deployed_sparse() const { return deployed_sparse_; }
  i64 stored_slots() const { return stored_slots_; }
  i64 handle() const { return handle_; }

  /// The as-programmed quantized matrix (golden copy, serialization /
  /// verify source). Physical PE cells may have drifted since (faults);
  /// this copy has not.
  const QuantizedNmMatrix& deployed_matrix() const { return deployed_; }

 private:
  HybridCore& core_;
  i64 handle_ = -1;
  i64 k_ = 0;         ///< logical reduction length
  i64 padded_k_ = 0;  ///< padded to a multiple of the group size
  i64 out_ = 0;
  NmConfig packed_cfg_;
  bool deployed_sparse_ = false;
  QuantParams act_params_;
  f32 weight_scale_ = 1.0f;
  i64 stored_slots_ = 0;
  QuantizedNmMatrix deployed_;
};

/// A conv layer on the hardware: im2col lowering around a PimMatmulLayer,
/// bias added digitally.
class PimConv {
 public:
  PimConv(HybridCore& core, Conv2d& conv, NmConfig cfg, PeKind target,
          f32 activation_scale, const QuantizedNmMatrix* preset = nullptr);

  /// x: [B, C, H, W] float activations -> [B, out, Ho, Wo].
  Tensor forward(const Tensor& x);

  const PimMatmulLayer& matmul_layer() const { return matmul_; }

 private:
  Conv2dGeometry geom_;
  PimMatmulLayer matmul_;
  Tensor bias_;  ///< [out] or empty
};

/// A fully-connected layer on the hardware.
class PimLinear {
 public:
  PimLinear(HybridCore& core, Linear& linear, NmConfig cfg, PeKind target,
            f32 activation_scale, const QuantizedNmMatrix* preset = nullptr);

  /// x: [B, in] -> [B, out].
  Tensor forward(const Tensor& x);

  const PimMatmulLayer& matmul_layer() const { return matmul_; }

 private:
  PimMatmulLayer matmul_;
  Tensor bias_;
};

}  // namespace msh
