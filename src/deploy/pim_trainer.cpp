#include "deploy/pim_trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "tensor/ops.h"

namespace msh {

namespace {
f32 dynamic_scale(const Tensor& t) {
  return std::max(t.abs_max(), 1e-6f) / 127.0f;
}
}  // namespace

PimLinearTrainer::PimLinearTrainer(HybridCore& core, i64 features,
                                   i64 classes, PimTrainerOptions options)
    : core_(core),
      options_(options),
      features_(features),
      classes_(classes),
      bias_(Shape{classes}) {
  MSH_REQUIRE(features_ > 0 && classes_ > 0);
  Rng rng(options_.seed);
  weight_ = kaiming_normal(Shape{classes_, features_}, features_, rng);

  NmConfig cfg{4, 4};  // dense packing unless a pattern is requested
  if (options_.nm) {
    MSH_REQUIRE(options_.nm->valid());
    MSH_REQUIRE(features_ % options_.nm->m == 0);
    mask_ = select_nm_mask(saliency_scores(weight_, Tensor{}), *options_.nm,
                           GroupAxis::kCols);
    apply_mask(weight_, *mask_);
    cfg = *options_.nm;
  }

  forward_pe_ = std::make_unique<PimMatmulLayer>(
      core_, weight_, cfg, PeKind::kSram, 1.0f);
  // Transposed deployment (Fig 6-2): effective matrix W, reduction over
  // classes, so e[B x classes] -> e_x[B x features].
  transposed_pe_ = std::make_unique<PimMatmulLayer>(
      core_, weight_.transposed(), NmConfig{4, 4}, PeKind::kSram, 1.0f);
}

Tensor PimLinearTrainer::forward(const Tensor& x) {
  MSH_REQUIRE(x.shape().rank() == 2 && x.shape()[1] == features_);
  forward_pe_->set_activation_scale(dynamic_scale(x));
  Tensor y = forward_pe_->matmul(x);
  const i64 b = y.shape()[0];
  for (i64 i = 0; i < b; ++i) {
    for (i64 j = 0; j < classes_; ++j) y[i * classes_ + j] += bias_[j];
  }
  return y;
}

Tensor PimLinearTrainer::propagate_error(const Tensor& error) {
  MSH_REQUIRE(error.shape().rank() == 2 && error.shape()[1] == classes_);
  transposed_pe_->set_activation_scale(dynamic_scale(error));
  return transposed_pe_->matmul(error);
}

f64 PimLinearTrainer::train_step(const Tensor& x,
                                 std::span<const i32> labels,
                                 Tensor* propagated_error) {
  const Tensor logits = forward(x);  // hardware forward
  modeled_cycles_ += core_.last_makespan();
  LossResult loss = softmax_cross_entropy(logits, labels);

  // eq. 1: error propagation through the transposed PE (the upstream
  // error is what a deeper network would consume).
  Tensor ex = propagate_error(loss.grad_logits);
  modeled_cycles_ += core_.last_makespan();
  if (propagated_error) *propagated_error = std::move(ex);

  // eq. 2: gradient = error^T x, digital.
  const Tensor dw = matmul_ta(loss.grad_logits, x);
  // eq. 3: update, honoring the mask.
  for (i64 i = 0; i < weight_.numel(); ++i) {
    if (mask_ && !mask_->kept(i)) continue;
    weight_[i] -= options_.lr * dw[i];
  }
  const i64 b = x.shape()[0];
  for (i64 j = 0; j < classes_; ++j) {
    f64 acc = 0.0;
    for (i64 i = 0; i < b; ++i) acc += loss.grad_logits[i * classes_ + j];
    bias_[j] -= options_.lr * static_cast<f32>(acc);
  }

  redeploy();
  ++steps_;
  return loss.loss;
}

void PimLinearTrainer::set_state(const Tensor& weight, const Tensor& bias) {
  MSH_REQUIRE(weight.shape() == (Shape{classes_, features_}));
  MSH_REQUIRE(bias.shape() == (Shape{classes_}));
  weight_ = weight;
  if (mask_) apply_mask(weight_, *mask_);
  bias_ = bias;
  redeploy();
}

void PimLinearTrainer::redeploy() {
  forward_pe_->update(weight_);
  transposed_pe_->update(weight_.transposed());
}

f64 PimLinearTrainer::evaluate(const Tensor& x,
                               std::span<const i32> labels) {
  return accuracy(forward(x), labels);
}

i64 PimLinearTrainer::slots_rewritten_per_step() const {
  return forward_pe_->stored_slots() + transposed_pe_->stored_slots();
}

}  // namespace msh
