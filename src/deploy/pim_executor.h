// Full-model deployment: every weight layer of a trained Rep-Net model
// placed on the hybrid core (frozen backbone convs -> MRAM sparse PEs,
// Rep-path convs + classifier -> SRAM sparse PEs, per the paper's Fig 6
// mapping) and whole-image inference executed through the functional PE
// simulators with INT8 weights AND INT8 activations.
//
// Non-matmul operators (BatchNorm in inference mode, ReLU, pooling,
// residual adds, the activation connectors) run in the digital periphery
// at full precision, as in the paper's fully-digital design.
//
// Activation scales come from a calibration pass: a software walk over
// calibration data records each matmul layer's input range.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "deploy/pim_layer.h"
#include "repnet/repnet_model.h"
#include "workloads/dataset.h"

namespace msh {

struct PimExecutorOptions {
  HybridCoreOptions core = {};
  /// Packing attempted for every layer; layers whose trained weights do
  /// not satisfy the pattern (e.g. an unpruned backbone) fall back to
  /// dense M:M packing automatically.
  NmConfig nm = kSparse1of4;
  i64 calibration_batch = 16;
  i64 calibration_batches = 2;
};

class PimRepNetExecutor {
 public:
  /// Deploys `model` (which must stay alive and unchanged) using
  /// `calibration` data for activation ranges.
  PimRepNetExecutor(RepNetModel& model, const Dataset& calibration,
                    PimExecutorOptions options = {});

  /// Hardware inference: [B, C, H, W] images -> [B, classes] logits.
  ///
  /// Thread-safety contract: an executor is single-threaded internally
  /// (it mutates its own HybridCore event counters), but hardware-mode
  /// forward treats the shared RepNetModel as strictly read-only. Several
  /// replicas deployed from the same model may therefore run forward()
  /// concurrently, one thread per replica — the serving runtime's
  /// concurrency model (see src/runtime).
  Tensor forward(const Tensor& images);

  /// Top-1 accuracy over a dataset, computed on the hardware.
  f64 evaluate(const Dataset& test, i64 batch = 32);

  const HybridCore& core() const { return core_; }
  i64 deployed_convs() const { return static_cast<i64>(convs_.size()); }
  /// Count of layers that deployed with the requested sparse packing.
  i64 sparse_deployments() const;

 private:
  /// Shared forward-structure walk. In calibration mode convs run in
  /// software while input ranges are recorded; in hardware mode they run
  /// through the deployed PIM layers.
  enum class Mode { kCalibrate, kHardware };
  Tensor walk(const Tensor& images, Mode mode);
  Tensor apply_conv(Conv2d& conv, const Tensor& x, Mode mode);
  Tensor apply_sequential(Sequential& seq, const Tensor& x, Mode mode);
  Tensor apply_residual(ResidualBlock& block, const Tensor& x, Mode mode);
  Tensor apply_rep(RepModule& rep, const Tensor& x, Mode mode);
  Tensor apply_classifier(const Tensor& x, Mode mode);

  void calibrate(const Dataset& calibration);
  void deploy();
  f32 scale_for(const void* layer) const;

  RepNetModel& model_;
  PimExecutorOptions options_;
  HybridCore core_;
  std::unordered_map<const void*, f32> input_amax_;
  std::unordered_map<const Conv2d*, std::unique_ptr<PimConv>> convs_;
  std::unique_ptr<PimLinear> classifier_;
};

/// Deploys `count` independent executor replicas of one trained model —
/// each with its own HybridCore, quantized weight images and calibration
/// state — so that every serving worker thread owns a full accelerator.
/// Construction is sequential (it walks the model in software); the
/// returned replicas may then forward() concurrently. Deterministic:
/// every replica is bit-identical to a directly constructed executor.
std::vector<std::unique_ptr<PimRepNetExecutor>> make_executor_replicas(
    RepNetModel& model, const Dataset& calibration, i64 count,
    PimExecutorOptions options = {});

}  // namespace msh
