// Full-model deployment: every weight layer of a trained Rep-Net model
// placed on the hybrid core (frozen backbone convs -> MRAM sparse PEs,
// Rep-path convs + classifier -> SRAM sparse PEs, per the paper's Fig 6
// mapping) and whole-image inference executed through the functional PE
// simulators with INT8 weights AND INT8 activations.
//
// Non-matmul operators (BatchNorm in inference mode, ReLU, pooling,
// residual adds, the activation connectors) run in the digital periphery
// at full precision, as in the paper's fully-digital design.
//
// Activation scales come from a calibration pass: a software walk over
// calibration data records each matmul layer's input range.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "deploy/ecc.h"
#include "deploy/image_io.h"
#include "deploy/pim_layer.h"
#include "device/faults.h"
#include "device/wear.h"
#include "repnet/repnet_model.h"
#include "workloads/dataset.h"

namespace msh {

struct PimExecutorOptions {
  HybridCoreOptions core = {};
  /// Packing attempted for every layer; layers whose trained weights do
  /// not satisfy the pattern (e.g. an unpruned backbone) fall back to
  /// dense M:M packing automatically.
  NmConfig nm = kSparse1of4;
  i64 calibration_batch = 16;
  i64 calibration_batches = 2;
  /// Protection applied to deployed weight/index codes: SEC-DED check
  /// words on weight bytes + even parity on index cells (spare array
  /// columns), parity-only on both, or raw.
  EccMode ecc = EccMode::kNone;
  /// Host threads for intra-batch (row-level) parallel PIM compute.
  /// <= 1 keeps every layer sequential (the default); N > 1 gives the
  /// executor a private N-thread pool that shards batch rows across PE
  /// tile lanes. Outputs stay bit-identical to sequential execution.
  i64 intra_op_threads = 1;
  /// Endurance model of the physical MRAM medium this executor programs.
  /// Null (the default) keeps programming ideal and free. Non-null, every
  /// MRAM array write — deploy, redeploy, scrub repair — routes through
  /// the tracker: same-value words are skipped (delta programming),
  /// pulses verify-and-retry with the MTJ error rates, worn-out words pin
  /// (achieved != desired; the verify gates catch it). The tracker
  /// outlives executor rebuilds — heal/swap/publish replace the executor
  /// but reprogram the *same* banks — so replicas sharing a physical
  /// accelerator must share one tracker (see ServingEngine).
  std::shared_ptr<MramWearTracker> wear;
  /// Metrics attribution for this deployment's programming pulses.
  WearPath wear_path = WearPath::kDeploy;
  /// Compute backend (DESIGN §5i). kModeled (the default) walks the
  /// functional PE datapaths with full cycle/event accounting; kRaw runs
  /// the SIMD host kernels over the same live cells — bit-identical
  /// forwards, exported images and verify probes, but modeled metrics
  /// (PE events, bus/buffer traffic, makespan) report zero. Overrides
  /// core.backend; clones and image deployments inherit it, so heal,
  /// swap and recovery rebuilds stay on the chosen backend.
  KernelBackend backend = KernelBackend::kModeled;
};

class PimRepNetExecutor {
 public:
  /// Deploys `model` (which must stay alive and unchanged) using
  /// `calibration` data for activation ranges.
  PimRepNetExecutor(RepNetModel& model, const Dataset& calibration,
                    PimExecutorOptions options = {});

  /// Hardware inference: [B, C, H, W] images -> [B, classes] logits.
  ///
  /// Thread-safety contract: an executor is externally single-threaded —
  /// at most one thread may call into it at a time (it mutates its own
  /// HybridCore event counters). Internally, forward() may fan batch rows
  /// out across `intra_op_threads` host threads on a pool this executor
  /// owns; those lanes touch only lane-local state plus read-only tile
  /// cells, and their event deltas merge back deterministically before
  /// forward() returns, so the option changes neither results nor the
  /// externally visible contract. Hardware-mode forward treats the shared
  /// RepNetModel as strictly read-only. Several replicas deployed from
  /// the same model may therefore run forward() concurrently, one
  /// (external) thread per replica — the serving runtime's concurrency
  /// model (see src/runtime). Replica- and row-level parallelism compose:
  /// total host threads = workers x intra_op_threads.
  Tensor forward(const Tensor& images);

  /// Top-1 accuracy over a dataset, computed on the hardware.
  f64 evaluate(const Dataset& test, i64 batch = 32);

  const HybridCore& core() const { return core_; }
  i64 deployed_convs() const { return static_cast<i64>(convs_.size()); }
  /// Count of layers that deployed with the requested sparse packing.
  i64 sparse_deployments() const;

  EccMode ecc_mode() const { return options_.ecc; }

  /// Scrub result for one deployed array (one HybridCore handle).
  struct ScrubReport {
    i64 handle = -1;
    bool is_sram = false;
    EccStats weights;
    EccStats indices;
    bool clean() const { return weights.clean() && indices.clean(); }
  };

  /// Applies the MTJ fault model to the PE-resident codes of every
  /// MRAM-deployed array — weight bytes, index cells, and (when
  /// protected) the stored check/parity cells, which live in the same
  /// imperfect medium. SRAM deployments are CMOS and not touched.
  /// Deterministic in `rng`.
  FaultStats inject_nvm_faults(const MtjFaultModel& model, Rng& rng);

  /// What a simulated power interruption did to the arrays.
  struct PowerLossStats {
    i64 sram_cells_wiped = 0;  ///< weight + index + check cells scrambled
    i64 sram_bytes_wiped = 0;  ///< payload bytes (weights + indices)
    FaultStats mram_drift;     ///< retention relaxation over the outage
  };

  /// Simulates a power interruption of `outage_s` seconds at the array
  /// level: every SRAM-deployed cell (weights, indices, and their
  /// check/parity spare columns — all CMOS, all volatile) is scrambled to
  /// the undefined power-up state, and every MRAM cell takes retention
  /// drift proportional to the outage duration (AP->P relaxation, plus
  /// its check cells — non-volatile but not immortal). Deterministic in
  /// `seed`. `retention_tau_s` <= 0 keeps the device default. The
  /// executor must not forward() again until warm_restart().
  PowerLossStats power_fail(f64 outage_s, u64 seed,
                            f64 retention_tau_s = 0.0);

  /// What warm_restart() rebuilt.
  struct WarmRestartStats {
    i64 sram_cells_restored = 0;  ///< re-programmed from the golden image
    i64 ecc_corrected = 0;        ///< MRAM single-bit drift fixed by SEC-DED
    i64 ecc_refetched = 0;        ///< detected-uncorrectable, golden re-fetch
    i64 silent_remaining = 0;     ///< drift the code missed (verify catches)
  };

  /// Warm restart after power_fail(): re-programs every SRAM array from
  /// the executor's golden copy (the host/flash image the deployment was
  /// programmed from — exactly what boot firmware re-fetches), re-encodes
  /// the SRAM check cells, then runs a repairing ECC scrub over the
  /// drifted MRAM arrays. With EccMode::kNone or kParity some drift may
  /// survive as `silent_remaining`; the caller's verify-then-promote
  /// gate (verify_against) decides whether the replica re-enters service
  /// or gets a cold redeploy.
  WarmRestartStats warm_restart();

  /// Decode/correct/re-encode pass over every deployed array.
  /// kSecDed corrects single-bit errors in place; kParity only detects.
  /// With `repair_detected_from_golden`, detected-uncorrectable words
  /// are re-fetched from the executor's golden copy (the host-DRAM
  /// model image every deployment was programmed from). `silent` counts
  /// corruption the code missed or miscorrected, measured against that
  /// same golden copy. Reports are also retained in
  /// last_scrub_reports(). With a wear tracker, MRAM repair writes go
  /// through it word by word (`wear_path` attributes them) — only the
  /// corrected words cost pulses, never the whole span.
  std::vector<ScrubReport> scrub(bool repair_detected_from_golden = false,
                                 WearPath wear_path = WearPath::kScrub);
  const std::vector<ScrubReport>& last_scrub_reports() const {
    return last_scrub_reports_;
  }

  /// Builds a fresh executor replica (own HybridCore, freshly encoded
  /// protection) reusing this executor's calibration. Read-only on the
  /// shared model, so safe while other replicas are forwarding
  /// concurrently — the serving runtime's redeploy-after-failure path.
  /// A replica deployed from an image (see clone_with_image) redeploys
  /// from that same image: heal-after-swap restores the swapped weights,
  /// not the original model's.
  std::unique_ptr<PimRepNetExecutor> clone() const;

  /// clone() with a different wear tracker and/or pulse attribution —
  /// how the serving engine gives each worker's redeploys their own
  /// physical medium (heal -> kHeal, recovery -> kRecovery). A null
  /// tracker clones without endurance modeling.
  std::unique_ptr<PimRepNetExecutor> clone_with_wear(
      std::shared_ptr<MramWearTracker> wear, WearPath path) const;

  /// Re-programs every MRAM array to its golden (intended) state through
  /// the wear tracker — the physical cost of restoring a stashed replica
  /// after a failed swap roll. No-op without a tracker. Delta
  /// programming makes an undisturbed restore nearly free.
  void reprogram_nvm(WearPath path);

  /// The physical-medium model this executor programs through (null =
  /// ideal programming).
  const std::shared_ptr<MramWearTracker>& wear_tracker() const {
    return options_.wear;
  }

  /// Like clone(), but programs the PE arrays from `image`'s quantized
  /// codes instead of re-quantizing the model — the model-swap path.
  /// Every deployed layer must have a matching entry (by layer name);
  /// missing or ill-fitting entries throw SimulationError. The image
  /// pointer is retained as this replica's deployment provenance.
  std::unique_ptr<PimRepNetExecutor> clone_with_image(
      std::shared_ptr<const DeploymentImage> image) const;

  /// Standalone image deployment: same as clone_with_image but without an
  /// existing executor to copy options/calibration from.
  static std::unique_ptr<PimRepNetExecutor> deploy_from_image(
      RepNetModel& model, PimExecutorOptions options,
      std::unordered_map<const void*, f32> amax,
      std::shared_ptr<const DeploymentImage> image);

  /// Serializes the as-programmed (golden) quantized matrices of every
  /// deployed layer under its stable name — what a device would flash.
  DeploymentImage export_image() const;

  /// Physical read-back verification: for every deployed layer, drives a
  /// deterministic INT8 probe vector through the PE arrays and compares
  /// bit-exactly against `image`'s reference matvec (plus scale/shape
  /// checks). Returns an empty string when the live arrays match the
  /// image, else a description of the first divergence — the
  /// deploy-verify gate of the zero-downtime swap.
  std::string verify_against(const DeploymentImage& image);

  /// The image this executor was deployed from (null when deployed by
  /// quantizing the model directly).
  const std::shared_ptr<const DeploymentImage>& source_image() const {
    return source_image_;
  }

  /// Calibration state (input-range table), for deploy_from_image.
  const std::unordered_map<const void*, f32>& input_amax() const {
    return input_amax_;
  }

  /// Stable names of the deployed weight layers, in deploy order.
  std::vector<std::string> layer_names() const;

 private:
  /// Clone constructor: skips calibration, reuses recorded ranges. With
  /// a non-null `image`, deploys its codes instead of quantizing.
  PimRepNetExecutor(RepNetModel& model, PimExecutorOptions options,
                    const std::unordered_map<const void*, f32>& amax,
                    std::shared_ptr<const DeploymentImage> image = nullptr);
  /// Shared forward-structure walk. In calibration mode convs run in
  /// software while input ranges are recorded; in hardware mode they run
  /// through the deployed PIM layers.
  enum class Mode { kCalibrate, kHardware };
  Tensor walk(const Tensor& images, Mode mode);
  Tensor apply_conv(Conv2d& conv, const Tensor& x, Mode mode);
  Tensor apply_sequential(Sequential& seq, const Tensor& x, Mode mode);
  Tensor apply_residual(ResidualBlock& block, const Tensor& x, Mode mode);
  Tensor apply_rep(RepModule& rep, const Tensor& x, Mode mode);
  Tensor apply_classifier(const Tensor& x, Mode mode);

  void calibrate(const Dataset& calibration);
  void deploy();
  void protect_arrays();
  /// Programs every MRAM array's golden codes into the physical medium
  /// via the wear tracker; the *achieved* values land in the live cells
  /// (golden keeps the intent). No-op without a tracker.
  void program_nvm_wear(WearPath path);
  /// Tells the tracker what the live MRAM cells hold after an external
  /// disturbance (fault injection, retention drift) — keeps its
  /// read-before-write diffing honest. No-op without a tracker.
  void sync_wear_resident(i64 handle);
  f32 scale_for(const void* layer) const;

  /// Check/parity cells plus the golden (as-programmed) code image of
  /// one deployed array. The golden copy models the host-side weight
  /// image deployments are programmed from — re-fetch source for
  /// detected-uncorrectable words and ground truth for `silent`.
  struct ArrayProtection {
    std::vector<u8> weight_checks;  ///< SEC-DED words or parity bits
    std::vector<u8> index_parity;   ///< 1 even-parity bit per index cell
    std::vector<i8> golden_weights;
    std::vector<u8> golden_indices;
  };

  RepNetModel& model_;
  PimExecutorOptions options_;
  HybridCore core_;
  /// Private intra-op worker pool (null when intra_op_threads <= 1);
  /// attached to core_ so every deployed layer's matmul can shard rows.
  std::unique_ptr<ThreadPool> intra_pool_;
  std::unordered_map<const void*, f32> input_amax_;
  std::unordered_map<const Conv2d*, std::unique_ptr<PimConv>> convs_;
  std::unique_ptr<PimLinear> classifier_;
  std::vector<ArrayProtection> protections_;  ///< indexed by core handle
  std::vector<ScrubReport> last_scrub_reports_;
  /// (stable name, deployed layer), in deploy-walk order.
  std::vector<std::pair<std::string, const PimMatmulLayer*>> named_layers_;
  /// Stable layer name per core handle — the wear tracker's array keys.
  std::vector<std::string> handle_names_;
  std::shared_ptr<const DeploymentImage> source_image_;
};

/// Deploys `count` independent executor replicas of one trained model —
/// each with its own HybridCore, quantized weight images and calibration
/// state — so that every serving worker thread owns a full accelerator.
/// Construction is sequential (it walks the model in software); the
/// returned replicas may then forward() concurrently. Deterministic:
/// every replica is bit-identical to a directly constructed executor.
/// `wear` (when non-empty) must hold one tracker per replica: each
/// replica programs its own physical medium, and its heals/swaps keep
/// writing through the same tracker.
std::vector<std::unique_ptr<PimRepNetExecutor>> make_executor_replicas(
    RepNetModel& model, const Dataset& calibration, i64 count,
    PimExecutorOptions options = {},
    const std::vector<std::shared_ptr<MramWearTracker>>& wear = {});

}  // namespace msh
