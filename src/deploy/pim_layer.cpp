#include "deploy/pim_layer.h"

#include <cmath>
#include <string>

#include "kernels/quant_kernels.h"

namespace msh {

bool satisfies_nm(const Tensor& matrix, NmConfig cfg) {
  if (!cfg.valid() || matrix.shape().rank() != 2) return false;
  const i64 rows = matrix.shape()[0], cols = matrix.shape()[1];
  if (rows % cfg.m != 0) return false;
  for (i64 c = 0; c < cols; ++c) {
    for (i64 g = 0; g < rows / cfg.m; ++g) {
      i32 nz = 0;
      for (i64 i = 0; i < cfg.m; ++i) {
        if (matrix[(g * cfg.m + i) * cols + c] != 0.0f) ++nz;
      }
      if (nz > cfg.n) return false;
    }
  }
  return true;
}

namespace {

/// Pads a [K x out] matrix with zero rows to a multiple of `multiple`.
Tensor pad_rows(const Tensor& matrix, i64 multiple) {
  const i64 k = matrix.shape()[0], out = matrix.shape()[1];
  const i64 padded = (k + multiple - 1) / multiple * multiple;
  if (padded == k) return matrix;
  Tensor result(Shape{padded, out});
  for (i64 i = 0; i < k * out; ++i) result[i] = matrix[i];
  return result;
}

}  // namespace

PimMatmulLayer::PimMatmulLayer(HybridCore& core, const Tensor& weight,
                               NmConfig cfg, PeKind target,
                               f32 activation_scale,
                               const QuantizedNmMatrix* preset)
    : core_(core) {
  MSH_REQUIRE(weight.shape().rank() == 2);
  MSH_REQUIRE(activation_scale > 0.0f);
  out_ = weight.shape()[0];
  k_ = weight.shape()[1];

  // PIM orientation: reduction dimension on the word lines.
  Tensor mapped = weight.transposed();  // [K x out]

  // Choose the packing: the requested N:M if the trained pattern holds,
  // otherwise the dense M:M fallback (every slot stored, index = offset).
  Tensor padded = pad_rows(mapped, cfg.m);
  if (satisfies_nm(padded, cfg)) {
    packed_cfg_ = cfg;
    deployed_sparse_ = true;
  } else {
    packed_cfg_ = NmConfig{4, 4};
    padded = pad_rows(mapped, packed_cfg_.m);
    deployed_sparse_ = false;
  }
  padded_k_ = padded.shape()[0];

  if (preset != nullptr) {
    if (preset->config().n != packed_cfg_.n ||
        preset->config().m != packed_cfg_.m ||
        preset->dense_rows() != padded_k_ || preset->cols() != out_) {
      throw SimulationError(
          "PimMatmulLayer: preset matrix does not fit the layer: preset " +
          std::to_string(preset->config().n) + ":" +
          std::to_string(preset->config().m) + " [" +
          std::to_string(preset->dense_rows()) + " x " +
          std::to_string(preset->cols()) + "], layer expects " +
          std::to_string(packed_cfg_.n) + ":" +
          std::to_string(packed_cfg_.m) + " [" + std::to_string(padded_k_) +
          " x " + std::to_string(out_) + "]");
    }
    deployed_ = *preset;
  } else {
    const NmPackedMatrix packed = NmPackedMatrix::pack(padded, packed_cfg_);
    deployed_ = QuantizedNmMatrix::from_packed(packed);
  }
  weight_scale_ = deployed_.scale();
  stored_slots_ = deployed_.packed_rows() * deployed_.cols();

  act_params_.scale = activation_scale;
  handle_ = target == PeKind::kSram ? core_.deploy_sram(deployed_)
                                    : core_.deploy_mram(deployed_);
}

void PimMatmulLayer::update(const Tensor& weight) {
  MSH_REQUIRE(weight.shape() == Shape({out_, k_}));
  Tensor padded = pad_rows(weight.transposed(), packed_cfg_.m);
  MSH_REQUIRE(satisfies_nm(padded, packed_cfg_));
  const NmPackedMatrix packed = NmPackedMatrix::pack(padded, packed_cfg_);
  deployed_ = QuantizedNmMatrix::from_packed(packed);
  weight_scale_ = deployed_.scale();
  core_.redeploy_sram(handle_, deployed_);
}

void PimMatmulLayer::set_activation_scale(f32 scale) {
  MSH_REQUIRE(scale > 0.0f);
  act_params_.scale = scale;
}

Tensor PimMatmulLayer::matmul(const Tensor& x, const Tensor* bias) {
  MSH_REQUIRE(x.shape().rank() == 2);
  MSH_REQUIRE(x.shape()[1] == k_);
  MSH_REQUIRE(bias == nullptr || bias->empty() ||
              static_cast<i64>(bias->numel()) == out_);
  const i64 batch = x.shape()[0];
  const bool add_bias = bias != nullptr && !bias->empty();
  ThreadPool* pool = core_.intra_op_pool();

  // The float<->INT8 boundary is shared kernel code (kernels/
  // quant_kernels.h) so both compute backends quantize and dequantize
  // identically — backend bit-exactness holds end to end.
  std::vector<i8> codes(static_cast<size_t>(batch * padded_k_));
  quantize_activations(x.data(), batch, k_, padded_k_, act_params_,
                       codes.data(), pool);

  const std::vector<i32> raw = core_.matmul(handle_, codes, batch);
  Tensor y(Shape{batch, out_});
  const f32 scale = act_params_.scale * weight_scale_;
  dequantize_outputs(raw.data(), batch, out_, scale,
                     add_bias ? bias->data() : nullptr, y.data(), pool);
  return y;
}

PimConv::PimConv(HybridCore& core, Conv2d& conv, NmConfig cfg, PeKind target,
                 f32 activation_scale, const QuantizedNmMatrix* preset)
    : geom_(conv.geometry()),
      matmul_(core, conv.weight().value, cfg, target, activation_scale,
              preset) {
  if (conv.has_bias()) bias_ = conv.bias().value;
}

Tensor PimConv::forward(const Tensor& x) {
  MSH_REQUIRE(x.shape().rank() == 4);
  const i64 n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const i64 ho = geom_.out_dim(h), wo = geom_.out_dim(w);

  // Lower to the matmul form: each output position's receptive field is
  // one input row for the PE.
  const Tensor cols = im2col(x, geom_);          // [K, positions]
  const Tensor rows = cols.transposed();         // [positions, K]
  Tensor flat = matmul_.matmul(rows);            // [positions, out]

  const i64 out_ch = geom_.out_channels;
  Tensor y(Shape{n, out_ch, ho, wo});
  const i64 spatial = ho * wo;
  // Scatter + bias, sharded over (image, output channel) planes: each
  // plane is written by exactly one lane, so the parallel result is
  // bit-identical to the sequential loop.
  parallel_for(matmul_.intra_op_pool(), n * out_ch,
               [&](i64 begin, i64 end) {
    for (i64 p = begin; p < end; ++p) {
      const i64 img = p / out_ch, oc = p % out_ch;
      const f32 b = bias_.empty() ? 0.0f : bias_[oc];
      for (i64 s = 0; s < spatial; ++s) {
        y[(img * out_ch + oc) * spatial + s] =
            flat[(img * spatial + s) * out_ch + oc] + b;
      }
    }
  });
  return y;
}

PimLinear::PimLinear(HybridCore& core, Linear& linear, NmConfig cfg,
                     PeKind target, f32 activation_scale,
                     const QuantizedNmMatrix* preset)
    : matmul_(core, linear.weight().value, cfg, target, activation_scale,
              preset) {
  bias_ = linear.bias().value;
}

Tensor PimLinear::forward(const Tensor& x) {
  // Bias rides inside the dequantization loop (one write per output
  // element, every batch row handled in its own lane) instead of a
  // second read-modify-write sweep after the batch loop.
  return matmul_.matmul(x, &bias_);
}

}  // namespace msh
