// Paper-scale workload descriptions for the hardware benches.
//
// The architecture-level results (Fig 7, Fig 8) depend only on layer
// shapes — weight matrix dimensions, activation volumes, which weights are
// learnable — not on trained values. This module reproduces the paper's
// workload exactly at that level: an ImageNet ResNet-50 backbone (~25.6M
// params, ~26 MB INT8 with the Rep-Net path) plus 6 learnable Rep-Net
// modules (~5% of the backbone) and a shared classifier head.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace msh {

/// One weight layer in its PIM-mapped matrix form: reduction dimension K
/// (streamed on the input word lines) by output dimension C (array
/// columns). For a conv layer K = in_channels * k * k, C = out_channels.
struct LayerShape {
  std::string name;
  i64 k = 0;          ///< reduction (rows)
  i64 c = 0;          ///< outputs (columns)
  i64 mac_batch = 1;  ///< input vectors per inference (conv: Hout*Wout)
  bool learnable = false;  ///< true for Rep-Net path / classifier layers

  i64 weights() const { return k * c; }
  /// Dense MACs for one inference through this layer.
  i64 macs() const { return k * c * mac_batch; }
};

struct ModelInventory {
  std::string name;
  std::vector<LayerShape> layers;

  i64 total_weights() const;
  i64 learnable_weights() const;
  i64 frozen_weights() const;
  f64 learnable_fraction() const;
  i64 total_macs() const;
  /// Dense weight storage in bytes at the given precision.
  i64 weight_bytes(i32 bits) const;
};

/// ImageNet ResNet-50 (224x224 input) + 6 Rep-Net modules + 100-class
/// shared classifier: the paper's ~26 MB continual-learning workload.
/// `rep_bottleneck` tunes the Rep-Net path width (default chosen so the
/// learnable fraction lands near the paper's ~5%).
ModelInventory resnet50_repnet_inventory(i64 rep_bottleneck = 16,
                                         i64 classifier_classes = 100);

/// ResNet-50 alone (no Rep-Net path), all weights learnable — the
/// "fine-tune all weights" workload of Fig 8.
ModelInventory resnet50_finetune_all_inventory();

/// MobileNetV1-style depthwise-separable workload (224x224, width 1.0)
/// + Rep-Net modules + classifier: a second paper-scale workload for
/// generality studies. Depthwise 3x3 layers have K = 9, which no 4-bit
/// N:M group divides — they exercise the dense-fallback path, while the
/// pointwise 1x1 layers (most of the weights) compress normally.
ModelInventory mobilenet_repnet_inventory(i64 rep_bottleneck = 16,
                                          i64 classifier_classes = 100);

}  // namespace msh
