#include "workloads/task_suite.h"

namespace msh {

SyntheticSpec base_task_spec(u64 seed) {
  return SyntheticSpec{
      .name = "imagenet-syn",
      .classes = 10,
      .train_per_class = 96,
      .test_per_class = 24,
      .image_size = 16,
      .channels = 3,
      .noise = 0.30f,
      .max_shift = 2,
      .class_sep = 1.0f,
      .seed = seed,
  };
}

std::vector<SyntheticSpec> downstream_task_specs(u64 seed) {
  // Distinct seeds shift every task's class prototypes away from the base
  // task, so transfer genuinely relies on backbone generality plus the
  // learnable Rep-Net path.
  return {
      SyntheticSpec{.name = "flower102-syn",
                    .classes = 8,
                    .train_per_class = 48,
                    .test_per_class = 16,
                    .image_size = 16,
                    .channels = 3,
                    .noise = 0.18f,
                    .max_shift = 1,
                    .class_sep = 1.1f,
                    .seed = seed + 1},
      SyntheticSpec{.name = "pets-syn",
                    .classes = 6,
                    .train_per_class = 48,
                    .test_per_class = 16,
                    .image_size = 16,
                    .channels = 3,
                    .noise = 0.28f,
                    .max_shift = 2,
                    .class_sep = 1.0f,
                    .seed = seed + 2},
      // Few training samples per class: the paper attributes the 1:4
      // sparse model beating the dense model on Food101 to dense
      // overfitting on its small training set.
      SyntheticSpec{.name = "food101-syn",
                    .classes = 8,
                    .train_per_class = 16,
                    .test_per_class = 16,
                    .image_size = 16,
                    .channels = 3,
                    .noise = 0.40f,
                    .max_shift = 2,
                    .class_sep = 0.9f,
                    .seed = seed + 3},
      SyntheticSpec{.name = "cifar10-syn",
                    .classes = 10,
                    .train_per_class = 48,
                    .test_per_class = 16,
                    .image_size = 16,
                    .channels = 3,
                    .noise = 0.30f,
                    .max_shift = 2,
                    .class_sep = 1.0f,
                    .seed = seed + 4},
      SyntheticSpec{.name = "cifar100-syn",
                    .classes = 16,
                    .train_per_class = 32,
                    .test_per_class = 12,
                    .image_size = 16,
                    .channels = 3,
                    .noise = 0.34f,
                    .max_shift = 2,
                    .class_sep = 0.9f,
                    .seed = seed + 5},
  };
}

SyntheticSpec adaptation_task_spec(const SyntheticSpec& served, u64 seed) {
  SyntheticSpec drifted = served;
  drifted.name = served.name + "-drift";
  drifted.seed = seed;  // new prototypes: same classes, new appearance
  drifted.noise = served.noise + 0.05f;
  return drifted;
}

}  // namespace msh
