#include "workloads/dataset.h"

#include <cmath>
#include <numbers>

namespace msh {

Tensor Dataset::batch_images(i64 begin, i64 count) const {
  MSH_REQUIRE(begin >= 0 && begin + count <= size());
  const i64 c = images.shape()[1], h = images.shape()[2],
            w = images.shape()[3];
  const i64 stride = c * h * w;
  Tensor out(Shape{count, c, h, w});
  for (i64 i = 0; i < count * stride; ++i)
    out[i] = images[begin * stride + i];
  return out;
}

std::vector<i32> Dataset::batch_labels(i64 begin, i64 count) const {
  MSH_REQUIRE(begin >= 0 && begin + count <= size());
  return {labels.begin() + begin, labels.begin() + begin + count};
}

void Dataset::shuffle(Rng& rng) {
  const i64 n = size();
  if (n <= 1) return;
  const i64 stride = images.numel() / n;
  for (i64 i = n; i > 1; --i) {
    const i64 j = static_cast<i64>(rng.uniform_index(static_cast<u64>(i)));
    const i64 a = i - 1;
    if (a == j) continue;
    std::swap(labels[static_cast<size_t>(a)], labels[static_cast<size_t>(j)]);
    for (i64 k = 0; k < stride; ++k)
      std::swap(images[a * stride + k], images[j * stride + k]);
  }
}

namespace {

/// One class prototype: sum of oriented sinusoids plus Gaussian blobs,
/// distinct per (seed, class, channel).
struct Prototype {
  std::vector<f32> pixels;  // [C*H*W]
};

Prototype make_prototype(i32 channels, i32 hw, f32 amplitude, Rng& rng) {
  Prototype proto;
  proto.pixels.assign(static_cast<size_t>(channels) * hw * hw, 0.0f);
  const i32 waves = 3;
  const i32 blobs = 2;
  for (i32 ch = 0; ch < channels; ++ch) {
    f32* plane = proto.pixels.data() + static_cast<size_t>(ch) * hw * hw;
    for (i32 k = 0; k < waves; ++k) {
      const f64 fx = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / hw;
      const f64 fy = rng.uniform(0.5, 2.5) * 2.0 * std::numbers::pi / hw;
      const f64 phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const f32 amp = static_cast<f32>(rng.uniform(0.3, 1.0)) * amplitude;
      for (i32 y = 0; y < hw; ++y)
        for (i32 x = 0; x < hw; ++x)
          plane[y * hw + x] +=
              amp * static_cast<f32>(std::sin(fx * x + fy * y + phase));
    }
    for (i32 k = 0; k < blobs; ++k) {
      const f64 cx = rng.uniform(0.2, 0.8) * hw;
      const f64 cy = rng.uniform(0.2, 0.8) * hw;
      const f64 sigma = rng.uniform(0.08, 0.25) * hw;
      const f32 amp = static_cast<f32>(rng.uniform(-1.0, 1.0)) * amplitude;
      for (i32 y = 0; y < hw; ++y) {
        for (i32 x = 0; x < hw; ++x) {
          const f64 d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
          plane[y * hw + x] +=
              amp * static_cast<f32>(std::exp(-d2 / (2.0 * sigma * sigma)));
        }
      }
    }
  }
  return proto;
}

/// Writes one jittered, noisy sample of a prototype into dst.
void render_sample(const Prototype& proto, i32 channels, i32 hw,
                   i32 max_shift, f32 noise, Rng& rng, f32* dst) {
  const i32 dx =
      max_shift > 0 ? static_cast<i32>(rng.uniform_int(-max_shift, max_shift))
                    : 0;
  const i32 dy =
      max_shift > 0 ? static_cast<i32>(rng.uniform_int(-max_shift, max_shift))
                    : 0;
  const f32 gain = static_cast<f32>(rng.uniform(0.85, 1.15));
  for (i32 ch = 0; ch < channels; ++ch) {
    const f32* src = proto.pixels.data() + static_cast<size_t>(ch) * hw * hw;
    f32* plane = dst + static_cast<size_t>(ch) * hw * hw;
    for (i32 y = 0; y < hw; ++y) {
      for (i32 x = 0; x < hw; ++x) {
        // Toroidal shift keeps energy constant across jitters.
        const i32 sy = ((y + dy) % hw + hw) % hw;
        const i32 sx = ((x + dx) % hw + hw) % hw;
        plane[y * hw + x] = gain * src[sy * hw + sx] +
                            static_cast<f32>(rng.gaussian(0.0, noise));
      }
    }
  }
}

Dataset render_split(const std::string& name,
                     const std::vector<Prototype>& protos,
                     const SyntheticSpec& spec, i32 per_class, Rng& rng) {
  Dataset ds;
  ds.name = name;
  ds.classes = spec.classes;
  const i64 n = static_cast<i64>(spec.classes) * per_class;
  ds.images = Tensor(
      Shape{n, spec.channels, spec.image_size, spec.image_size});
  ds.labels.resize(static_cast<size_t>(n));
  const i64 stride = static_cast<i64>(spec.channels) * spec.image_size *
                     spec.image_size;
  i64 row = 0;
  for (i32 cls = 0; cls < spec.classes; ++cls) {
    for (i32 s = 0; s < per_class; ++s, ++row) {
      ds.labels[static_cast<size_t>(row)] = cls;
      render_sample(protos[static_cast<size_t>(cls)], spec.channels,
                    spec.image_size, spec.max_shift, spec.noise, rng,
                    ds.images.data() + row * stride);
    }
  }
  ds.shuffle(rng);
  return ds;
}

}  // namespace

TrainTestSplit make_synthetic_dataset(const SyntheticSpec& spec) {
  MSH_REQUIRE(spec.classes >= 2);
  MSH_REQUIRE(spec.train_per_class > 0 && spec.test_per_class > 0);
  MSH_REQUIRE(spec.image_size >= 4 && spec.channels >= 1);

  Rng rng(spec.seed);
  std::vector<Prototype> protos;
  protos.reserve(static_cast<size_t>(spec.classes));
  for (i32 c = 0; c < spec.classes; ++c)
    protos.push_back(make_prototype(spec.channels, spec.image_size,
                                    spec.class_sep, rng));

  TrainTestSplit split;
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  split.train = render_split(spec.name + "/train", protos, spec,
                             spec.train_per_class, train_rng);
  split.test = render_split(spec.name + "/test", protos, spec,
                            spec.test_per_class, test_rng);
  return split;
}

}  // namespace msh
