#include "workloads/model_zoo.h"

namespace msh {

BackboneConfig default_backbone_config() { return BackboneConfig{}; }

RepNetConfig default_repnet_config() { return RepNetConfig{}; }

}  // namespace msh
