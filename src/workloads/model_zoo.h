// Model configuration presets shared by the algorithm stack (trainable
// MicroResNet models) and the hardware benches (paper-scale inventories).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace msh {

/// MicroResNet backbone configuration (the trainable stand-in for the
/// paper's ImageNet ResNet-50 backbone).
struct BackboneConfig {
  i64 in_channels = 3;
  i64 stem_channels = 16;
  std::vector<i64> stage_channels = {16, 32, 64};
  std::vector<i64> blocks_per_stage = {2, 2, 2};
  /// Stage strides; first stage keeps resolution, later stages halve it.
  std::vector<i64> stage_strides = {1, 2, 2};

  i64 num_stages() const { return static_cast<i64>(stage_channels.size()); }
  i64 feature_channels() const { return stage_channels.back(); }
};

/// Rep-Net path configuration: one learnable module per backbone stage,
/// each "1 pooling layer + 2 convolution layers where one kernel is 1x1"
/// (paper §5.1), with a bottleneck width keeping the path tiny.
struct RepNetConfig {
  /// Bottleneck channels = stage_out_channels / bottleneck_divisor (>= 4).
  i64 bottleneck_divisor = 8;
  i64 min_bottleneck = 4;

  i64 bottleneck_for(i64 out_channels) const {
    const i64 b = out_channels / bottleneck_divisor;
    return b < min_bottleneck ? min_bottleneck : b;
  }
};

BackboneConfig default_backbone_config();
RepNetConfig default_repnet_config();

}  // namespace msh
