#include "workloads/layer_inventory.h"

#include "common/types.h"

namespace msh {

i64 ModelInventory::total_weights() const {
  i64 n = 0;
  for (const auto& l : layers) n += l.weights();
  return n;
}

i64 ModelInventory::learnable_weights() const {
  i64 n = 0;
  for (const auto& l : layers)
    if (l.learnable) n += l.weights();
  return n;
}

i64 ModelInventory::frozen_weights() const {
  return total_weights() - learnable_weights();
}

f64 ModelInventory::learnable_fraction() const {
  const i64 total = total_weights();
  return total == 0 ? 0.0
                    : static_cast<f64>(learnable_weights()) /
                          static_cast<f64>(total);
}

i64 ModelInventory::total_macs() const {
  i64 n = 0;
  for (const auto& l : layers) n += l.macs();
  return n;
}

i64 ModelInventory::weight_bytes(i32 bits) const {
  MSH_REQUIRE(bits > 0);
  return total_weights() * bits / 8;
}

namespace {

/// Appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand, plus
/// an optional projection shortcut). `spatial_in` is the input feature-map
/// side; stride applies to the 3x3 conv (torchvision convention).
void add_bottleneck(std::vector<LayerShape>& layers, const std::string& tag,
                    i64 in_ch, i64 mid_ch, i64 out_ch, i64 spatial_in,
                    i64 stride, bool projection) {
  const i64 spatial_out = spatial_in / stride;
  layers.push_back({tag + ".conv1(1x1)", in_ch, mid_ch,
                    spatial_in * spatial_in, false});
  layers.push_back({tag + ".conv2(3x3)", mid_ch * 9, mid_ch,
                    spatial_out * spatial_out, false});
  layers.push_back({tag + ".conv3(1x1)", mid_ch, out_ch,
                    spatial_out * spatial_out, false});
  if (projection) {
    layers.push_back({tag + ".proj(1x1)", in_ch, out_ch,
                      spatial_out * spatial_out, false});
  }
}

/// Appends one ResNet-50 stage of bottleneck blocks.
void add_stage(std::vector<LayerShape>& layers, const std::string& tag,
               i64 blocks, i64 in_ch, i64 mid_ch, i64 out_ch, i64 spatial_in,
               i64 first_stride) {
  add_bottleneck(layers, tag + ".b1", in_ch, mid_ch, out_ch, spatial_in,
                 first_stride, /*projection=*/true);
  const i64 spatial = spatial_in / first_stride;
  for (i64 b = 2; b <= blocks; ++b) {
    add_bottleneck(layers, tag + ".b" + std::to_string(b), out_ch, mid_ch,
                   out_ch, spatial, 1, /*projection=*/false);
  }
}

/// Appends one learnable Rep-Net module: AvgPool(2) + 1x1 conv to the
/// bottleneck width + 3x3 conv back to the stage width (paper §5.1).
void add_rep_module(std::vector<LayerShape>& layers, i64 idx, i64 channels,
                    i64 spatial, i64 bottleneck) {
  const i64 pooled = spatial / 2;
  const std::string tag = "repnet.m" + std::to_string(idx);
  layers.push_back({tag + ".conv1(1x1)", channels, bottleneck,
                    pooled * pooled, true});
  layers.push_back({tag + ".conv2(3x3)", bottleneck * 9, channels,
                    pooled * pooled, true});
}

std::vector<LayerShape> resnet50_backbone_layers() {
  std::vector<LayerShape> layers;
  // Stem: 7x7, 3->64, stride 2, 224 -> 112.
  layers.push_back({"conv1(7x7)", 3 * 49, 64, 112 * 112, false});
  // After 3x3 max pool: 56x56.
  add_stage(layers, "conv2", 3, 64, 64, 256, 56, 1);
  add_stage(layers, "conv3", 4, 256, 128, 512, 56, 2);
  add_stage(layers, "conv4", 6, 512, 256, 1024, 28, 2);
  add_stage(layers, "conv5", 3, 1024, 512, 2048, 14, 2);
  // Original ImageNet head stays resident (frozen) in the backbone.
  layers.push_back({"fc(imagenet)", 2048, 1000, 1, false});
  return layers;
}

}  // namespace

ModelInventory resnet50_repnet_inventory(i64 rep_bottleneck,
                                         i64 classifier_classes) {
  MSH_REQUIRE(rep_bottleneck > 0 && classifier_classes > 0);
  ModelInventory inv;
  inv.name = "resnet50+repnet";
  inv.layers = resnet50_backbone_layers();

  // Six Rep-Net modules tapping progressively deeper backbone stages
  // (channels / spatial side at the tap points).
  const i64 ch[] = {256, 512, 512, 1024, 1024, 2048};
  const i64 sp[] = {56, 28, 28, 14, 14, 7};
  for (i64 i = 0; i < 6; ++i)
    add_rep_module(inv.layers, i + 1, ch[i], sp[i], rep_bottleneck);

  // Shared downstream classifier, retrained per task.
  inv.layers.push_back(
      {"classifier", 2048, classifier_classes, 1, true});
  return inv;
}

ModelInventory mobilenet_repnet_inventory(i64 rep_bottleneck,
                                          i64 classifier_classes) {
  MSH_REQUIRE(rep_bottleneck > 0 && classifier_classes > 0);
  ModelInventory inv;
  inv.name = "mobilenetv1+repnet";

  // Stem: 3x3, 3->32, stride 2 (224 -> 112).
  inv.layers.push_back({"conv1(3x3)", 3 * 9, 32, 112 * 112, false});

  // Depthwise-separable blocks: (channels_out, stride) per MobileNetV1.
  struct Block {
    i64 out_ch;
    i64 stride;
  };
  const Block blocks[] = {{64, 1},   {128, 2}, {128, 1}, {256, 2},
                          {256, 1},  {512, 2}, {512, 1}, {512, 1},
                          {512, 1},  {512, 1}, {512, 1}, {1024, 2},
                          {1024, 1}};
  i64 in_ch = 32;
  i64 spatial = 112;
  i64 idx = 0;
  for (const Block& b : blocks) {
    ++idx;
    const i64 out_spatial = spatial / b.stride;
    // Depthwise 3x3: one 9-element filter per channel. K = 9 per output
    // channel — modeled as in_ch independent [9 x 1] columns.
    inv.layers.push_back({"dw" + std::to_string(idx) + "(3x3dw)", 9, in_ch,
                          out_spatial * out_spatial, false});
    // Pointwise 1x1: the bulk of the weights.
    inv.layers.push_back({"pw" + std::to_string(idx) + "(1x1)", in_ch,
                          b.out_ch, out_spatial * out_spatial, false});
    in_ch = b.out_ch;
    spatial = out_spatial;
  }
  inv.layers.push_back({"fc(imagenet)", 1024, 1000, 1, false});

  // Rep-Net taps at progressively deeper pointwise outputs.
  const i64 ch[] = {128, 256, 512, 512, 1024, 1024};
  const i64 sp[] = {56, 28, 14, 14, 7, 7};
  for (i64 i = 0; i < 6; ++i)
    add_rep_module(inv.layers, i + 1, ch[i], sp[i], rep_bottleneck);
  inv.layers.push_back({"classifier", 1024, classifier_classes, 1, true});
  return inv;
}

ModelInventory resnet50_finetune_all_inventory() {
  ModelInventory inv;
  inv.name = "resnet50-finetune-all";
  inv.layers = resnet50_backbone_layers();
  for (auto& l : inv.layers) l.learnable = true;
  return inv;
}

}  // namespace msh
