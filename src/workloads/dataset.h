// Synthetic image-classification datasets.
//
// The paper evaluates on ImageNet (backbone pretrain) plus five downstream
// datasets (Flowers102, Pets, Food101, CIFAR-10, CIFAR-100) which are not
// shippable in this repository. Each is replaced by a procedurally
// generated stand-in: every class is a smooth random "prototype" image
// (mixture of oriented sinusoids and Gaussian blobs) and samples are
// noisy, jittered draws around their prototype. Task difficulty is
// controlled by noise level, jitter, class count and samples per class —
// enough structure that a frozen backbone transfers features and a small
// learnable Rep-Net path measurably improves new-task accuracy.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace msh {

struct Dataset {
  std::string name;
  Tensor images;            ///< [N, C, H, W]
  std::vector<i32> labels;  ///< N entries in [0, classes)
  i32 classes = 0;

  i64 size() const { return images.empty() ? 0 : images.shape()[0]; }

  /// Copies rows [begin, begin+count) into a batch tensor + label span.
  Tensor batch_images(i64 begin, i64 count) const;
  std::vector<i32> batch_labels(i64 begin, i64 count) const;

  /// Deterministically permutes samples.
  void shuffle(Rng& rng);
};

/// Generation recipe for one synthetic classification task.
struct SyntheticSpec {
  std::string name;
  i32 classes = 10;
  i32 train_per_class = 64;
  i32 test_per_class = 16;
  i32 image_size = 16;   ///< square images
  i32 channels = 3;
  f32 noise = 0.25f;     ///< additive Gaussian noise stddev
  i32 max_shift = 2;     ///< random translation in pixels
  f32 class_sep = 1.0f;  ///< prototype amplitude (higher = easier)
  u64 seed = 1;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates a train/test split for the spec. Deterministic in the seed.
TrainTestSplit make_synthetic_dataset(const SyntheticSpec& spec);

}  // namespace msh
