// The evaluation task suite mirroring the paper's §5.1 setup: one base
// task for backbone pretraining (the ImageNet stand-in) and five
// downstream continual-learning tasks (Flowers102 / Pets / Food101 /
// CIFAR-10 / CIFAR-100 stand-ins).
#pragma once

#include <vector>

#include "workloads/dataset.h"

namespace msh {

/// Recipe for the backbone pretraining task.
SyntheticSpec base_task_spec(u64 seed = 101);

/// The five downstream task recipes, ordered as in the paper's Table 1.
/// The Food101 stand-in deliberately has few training samples per class
/// to reproduce the paper's overfitting observation.
std::vector<SyntheticSpec> downstream_task_specs(u64 seed = 202);

/// A personalization drift of `served`: identical class count and image
/// geometry, but shifted class prototypes (fresh seed) under heavier
/// noise. This is the stream the continual-learning lane fine-tunes on
/// while the engine keeps serving the original task — the class count
/// must match so the deployed classifier head keeps its shape.
SyntheticSpec adaptation_task_spec(const SyntheticSpec& served,
                                   u64 seed = 303);

}  // namespace msh
